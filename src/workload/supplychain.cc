#include "workload/supplychain.h"

namespace prever::workload {

using storage::Value;

SupplyChainWorkload::SupplyChainWorkload(const SupplyChainConfig& config)
    : config_(config), rng_(config.seed) {}

storage::Schema SupplyChainWorkload::EventSchema() {
  return storage::Schema({{"id", storage::ValueType::kString},
                          {"kind", storage::ValueType::kString},
                          {"product", storage::ValueType::kString},
                          {"qty", storage::ValueType::kInt64},
                          {"at", storage::ValueType::kTimestamp}});
}

const char* SupplyChainWorkload::ShipmentConstraint() {
  // On a ship event for product P of q units:
  //   total shipped so far + q  <=  total produced so far.
  // Expressed with both aggregates on one side is outside the linear class,
  // so this constraint runs on the plaintext/federated-plaintext path —
  // exactly the expressiveness gap §4/§5 highlight for token mechanisms.
  return
      "SUM(events.qty WHERE kind = 'ship' AND product = update.product) + "
      "update.qty <= "
      "SUM(events.qty WHERE kind = 'produce' AND product = update.product)";
}

core::Update SupplyEvent::ToUpdate(uint64_t event_index) const {
  core::Update u;
  u.id = "ev" + std::to_string(event_index);
  u.producer = "enterprise" + std::to_string(enterprise);
  u.timestamp = at;
  const char* kind_name = kind == SupplyEventKind::kProduce ? "produce" : "ship";
  u.fields = {{"kind", Value::String(kind_name)},
              {"product", Value::String(product)},
              {"qty", Value::Int64(quantity)}};
  u.mutation.op = storage::Mutation::Op::kInsert;
  u.mutation.table = SupplyChainWorkload::kTableName;
  u.mutation.row = {Value::String(u.id), Value::String(kind_name),
                    Value::String(product), Value::Int64(quantity),
                    Value::Timestamp(at)};
  return u;
}

std::vector<SupplyEvent> SupplyChainWorkload::Generate() {
  std::vector<SupplyEvent> events;
  events.reserve(config_.num_events);
  // Track per-product balance so "honest" ship events stay within stock.
  std::vector<int64_t> produced(config_.num_products, 0);
  std::vector<int64_t> shipped(config_.num_products, 0);
  for (size_t i = 0; i < config_.num_events; ++i) {
    SupplyEvent e;
    size_t product = rng_.NextBelow(config_.num_products);
    e.product = "product" + std::to_string(product);
    e.enterprise = rng_.NextBelow(config_.num_enterprises);
    e.at = (i + 1) * kMinute;
    bool produce = rng_.NextBool(0.55);
    if (produce) {
      e.kind = SupplyEventKind::kProduce;
      e.quantity = rng_.NextInRange(1, config_.max_quantity);
      produced[product] += e.quantity;
    } else {
      e.kind = SupplyEventKind::kShip;
      int64_t available = produced[product] - shipped[product];
      if (rng_.NextBool(config_.violation_rate) || available <= 0) {
        // Deliberate violation: ship more than available.
        e.quantity = available + rng_.NextInRange(1, config_.max_quantity);
      } else {
        e.quantity = rng_.NextInRange(1, available);
        shipped[product] += e.quantity;
      }
    }
    events.push_back(std::move(e));
  }
  return events;
}

}  // namespace prever::workload
