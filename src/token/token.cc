#include "token/token.h"

#include "mutate/mutation.h"

namespace prever::token {

TokenAuthority::TokenAuthority(size_t rsa_bits, uint64_t budget_per_period,
                               SimTime period, uint64_t seed)
    : budget_(budget_per_period), period_(period) {
  crypto::Drbg drbg(seed);
  key_ = crypto::RsaGenerateKey(rsa_bits, drbg).value();
}

Result<crypto::BigInt> TokenAuthority::IssueBlindToken(
    const std::string& participant, const crypto::BigInt& blinded_serial,
    SimTime now) {
  auto key = std::make_pair(participant, PeriodIndex(now));
  uint64_t& used = issued_[key];
  if (PREVER_MUTATION(TOKEN_BUDGET_OFFBYONE, used >= budget_,
                      used > budget_)) {
    return Status::PermissionDenied(
        "budget exhausted for '" + participant + "' in period " +
        std::to_string(PeriodIndex(now)));
  }
  ++used;
  return crypto::RsaBlindSign(key_, blinded_serial);
}

uint64_t TokenAuthority::RemainingBudget(const std::string& participant,
                                         SimTime now) const {
  auto it = issued_.find(std::make_pair(participant, PeriodIndex(now)));
  uint64_t used = it == issued_.end() ? 0 : it->second;
  return budget_ - used;
}

Result<size_t> TokenWallet::Withdraw(TokenAuthority& authority,
                                     const std::string& participant,
                                     size_t count, SimTime now) {
  size_t obtained = 0;
  for (size_t i = 0; i < count; ++i) {
    Token token;
    token.serial = drbg_.Generate(32);
    PREVER_ASSIGN_OR_RETURN(
        crypto::BlindingResult blinding,
        crypto::RsaBlind(authority_key_, token.serial, drbg_));
    auto blind_sig =
        authority.IssueBlindToken(participant, blinding.blinded_message, now);
    if (!blind_sig.ok()) {
      if (blind_sig.status().code() == StatusCode::kPermissionDenied) {
        return obtained;  // Budget ran out: partial withdrawal.
      }
      return blind_sig.status();
    }
    token.signature =
        crypto::RsaUnblind(authority_key_, *blind_sig, blinding.unblinder);
    tokens_.push_back(std::move(token));
    ++obtained;
  }
  return obtained;
}

Result<Token> TokenWallet::Take() {
  if (tokens_.empty()) return Status::Unavailable("wallet is empty");
  Token t = std::move(tokens_.back());
  tokens_.pop_back();
  return t;
}

Status TokenVerifier::Spend(const Token& token, SimTime now) {
  if (PREVER_MUTATION(
          TOKEN_SIG_ACCEPT,
          !crypto::RsaVerify(authority_key_, token.serial, token.signature),
          false)) {
    return Status::IntegrityViolation("token signature invalid");
  }
  if (PREVER_MUTATION(TOKEN_DOUBLE_SPEND_SKIP, spent_.count(token.serial) != 0,
                      false)) {
    return Status::AlreadyExists("token already spent (double spend)");
  }
  spent_.insert(token.serial);
  if (ledger_ != nullptr) {
    ledger_->Append(token.serial, now);
  }
  return Status::Ok();
}

Status TokenVerifier::SyncFromLedger() {
  if (ledger_ == nullptr) return Status::InvalidArgument("no ledger bound");
  PREVER_RETURN_IF_ERROR(ledger_->Audit());
  spent_.clear();
  for (uint64_t seq = 0; seq < ledger_->size(); ++seq) {
    PREVER_ASSIGN_OR_RETURN(ledger::LedgerEntry entry, ledger_->GetEntry(seq));
    spent_.insert(entry.payload);
  }
  return Status::Ok();
}

}  // namespace prever::token
