#include "crypto/shamir.h"

namespace prever::crypto {

uint64_t Field61::Reduce(uint64_t x) {
  // Mersenne reduction: x = hi * 2^61 + lo ≡ hi + lo (mod 2^61 - 1).
  x = (x >> 61) + (x & kPrime);
  if (x >= kPrime) x -= kPrime;
  return x;
}

uint64_t Field61::Add(uint64_t a, uint64_t b) {
  uint64_t s = a + b;  // a, b < 2^61 so no overflow in 64 bits.
  if (s >= kPrime) s -= kPrime;
  return s;
}

uint64_t Field61::Sub(uint64_t a, uint64_t b) {
  return a >= b ? a - b : a + kPrime - b;
}

uint64_t Field61::Mul(uint64_t a, uint64_t b) {
  unsigned __int128 prod = static_cast<unsigned __int128>(a) * b;
  uint64_t lo = static_cast<uint64_t>(prod) & kPrime;
  uint64_t hi = static_cast<uint64_t>(prod >> 61);
  return Reduce(lo + Reduce(hi));
}

uint64_t Field61::Pow(uint64_t base, uint64_t exp) {
  uint64_t result = 1;
  base = Reduce(base);
  while (exp > 0) {
    if (exp & 1) result = Mul(result, base);
    base = Mul(base, base);
    exp >>= 1;
  }
  return result;
}

uint64_t Field61::Inv(uint64_t a) { return Pow(a, kPrime - 2); }

uint64_t Field61::Random(Rng& rng) { return rng.NextBelow(kPrime); }

Result<std::vector<ShamirShare>> ShamirShareSecret(uint64_t secret, size_t n,
                                                   size_t t, Rng& rng) {
  if (t == 0 || t > n) {
    return Status::InvalidArgument("threshold must satisfy 1 <= t <= n");
  }
  if (secret >= Field61::kPrime) {
    return Status::InvalidArgument("secret must be < 2^61 - 1");
  }
  // Random polynomial f of degree t-1 with f(0) = secret.
  std::vector<uint64_t> coeffs(t);
  coeffs[0] = secret;
  for (size_t i = 1; i < t; ++i) coeffs[i] = Field61::Random(rng);

  std::vector<ShamirShare> shares(n);
  for (size_t party = 0; party < n; ++party) {
    uint64_t x = party + 1;  // Nonzero evaluation points.
    // Horner evaluation.
    uint64_t y = 0;
    for (size_t i = t; i-- > 0;) y = Field61::Add(Field61::Mul(y, x), coeffs[i]);
    shares[party] = {x, y};
  }
  return shares;
}

Result<uint64_t> ShamirReconstruct(const std::vector<ShamirShare>& shares) {
  if (shares.empty()) return Status::InvalidArgument("no shares");
  for (size_t i = 0; i < shares.size(); ++i) {
    if (shares[i].x == 0) return Status::InvalidArgument("share with x == 0");
    for (size_t j = i + 1; j < shares.size(); ++j) {
      if (shares[i].x == shares[j].x) {
        return Status::InvalidArgument("duplicate share points");
      }
    }
  }
  // Lagrange interpolation at 0: secret = sum_i y_i * prod_{j!=i} x_j/(x_j - x_i).
  uint64_t secret = 0;
  for (size_t i = 0; i < shares.size(); ++i) {
    uint64_t num = 1, den = 1;
    for (size_t j = 0; j < shares.size(); ++j) {
      if (j == i) continue;
      num = Field61::Mul(num, shares[j].x);
      den = Field61::Mul(den, Field61::Sub(shares[j].x, shares[i].x));
    }
    uint64_t term = Field61::Mul(shares[i].y, Field61::Mul(num, Field61::Inv(den)));
    secret = Field61::Add(secret, term);
  }
  return secret;
}

Result<std::vector<ShamirShare>> ShamirAddShares(
    const std::vector<ShamirShare>& a, const std::vector<ShamirShare>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("share vectors differ in size");
  }
  std::vector<ShamirShare> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].x != b[i].x) {
      return Status::InvalidArgument("share points do not match");
    }
    out[i] = {a[i].x, Field61::Add(a[i].y, b[i].y)};
  }
  return out;
}

std::vector<ShamirShare> ShamirScaleShares(const std::vector<ShamirShare>& a,
                                           uint64_t c) {
  std::vector<ShamirShare> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = {a[i].x, Field61::Mul(a[i].y, Field61::Reduce(c))};
  }
  return out;
}

std::vector<uint64_t> AdditiveShare(uint64_t secret, size_t n, Rng& rng) {
  std::vector<uint64_t> shares(n);
  uint64_t sum = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    shares[i] = rng.NextU64();
    sum += shares[i];
  }
  shares[n - 1] = secret - sum;  // mod 2^64 wraparound is the point.
  return shares;
}

uint64_t AdditiveReconstruct(const std::vector<uint64_t>& shares) {
  uint64_t sum = 0;
  for (uint64_t s : shares) sum += s;
  return sum;
}

}  // namespace prever::crypto
