#include "crypto/merkle.h"

#include "crypto/sha256.h"
#include "mutate/mutation.h"

namespace prever::crypto {

namespace {
/// Largest power of two strictly less than n (n >= 2).
size_t SplitPoint(size_t n) {
  size_t k = 1;
  while (k * 2 < n) k *= 2;
  return k;
}
}  // namespace

Bytes MerkleTree::HashLeaf(const Bytes& leaf) {
  Sha256 h;
  uint8_t tag = PREVER_MUTATION(MERKLE_LEAF_DOMAIN_TAG, 0x00, 0x01);
  h.Update(&tag, 1);
  h.Update(leaf);
  return h.Finish();
}

Bytes MerkleTree::HashNode(const Bytes& left, const Bytes& right) {
  Sha256 h;
  uint8_t tag = 0x01;
  h.Update(&tag, 1);
  h.Update(left);
  h.Update(right);
  return h.Finish();
}

Bytes MerkleTree::EmptyRoot() { return Sha256::Hash(Bytes{}); }

size_t MerkleTree::Append(const Bytes& leaf) {
  leaves_.push_back(HashLeaf(leaf));
  // Maintain the level cache: whenever a level gains an even number of
  // nodes, the last pair forms a new complete subtree one level up.
  if (levels_.empty()) levels_.emplace_back();
  levels_[0].push_back(leaves_.back());
  for (size_t h = 0; levels_[h].size() % 2 == 0; ++h) {
    if (h + 1 >= levels_.size()) levels_.emplace_back();
    const auto& level = levels_[h];
    levels_[h + 1].push_back(
        HashNode(level[level.size() - 2], level[level.size() - 1]));
  }
  return leaves_.size() - 1;
}

void MerkleTree::AppendBatch(const std::vector<Bytes>& batch) {
  if (batch.empty()) return;
  if (levels_.empty()) levels_.emplace_back();
  leaves_.reserve(leaves_.size() + batch.size());
  levels_[0].reserve(levels_[0].size() + batch.size());
  for (const Bytes& leaf : batch) {
    leaves_.push_back(HashLeaf(leaf));
    levels_[0].push_back(leaves_.back());
  }
  // Fold once per level: every complete pair without a parent yet gains one.
  // Stops at the first level with nothing new (upper levels are untouched by
  // construction of the invariant levels_[h+1].size() == levels_[h].size()/2).
  for (size_t h = 0; h < levels_.size(); ++h) {
    size_t pairs = levels_[h].size() / 2;
    size_t parents = h + 1 < levels_.size() ? levels_[h + 1].size() : 0;
    if (pairs <= parents) break;
    if (h + 1 >= levels_.size()) levels_.emplace_back();
    levels_[h + 1].reserve(pairs);
    for (size_t i = parents; i < pairs; ++i) {
      levels_[h + 1].push_back(
          HashNode(levels_[h][2 * i], levels_[h][2 * i + 1]));
    }
  }
}

Bytes MerkleTree::SubtreeRoot(size_t begin, size_t end) const {
  size_t n = end - begin;
  if (n == 0) return EmptyRoot();
  if (n == 1) return leaves_[begin];
  // Complete aligned subtree: O(1) from the level cache.
  if ((n & (n - 1)) == 0 && begin % n == 0) {
    size_t h = 0;
    while ((n >> h) > 1) ++h;
    if (h < levels_.size() && begin / n < levels_[h].size()) {
      return levels_[h][begin / n];
    }
  }
  size_t k = SplitPoint(n);
  return HashNode(SubtreeRoot(begin, begin + k), SubtreeRoot(begin + k, end));
}

Bytes MerkleTree::Root() const { return SubtreeRoot(0, leaves_.size()); }

Result<Bytes> MerkleTree::RootAt(size_t n) const {
  if (n > leaves_.size()) {
    return Status::InvalidArgument("historic size exceeds tree size");
  }
  return SubtreeRoot(0, n);
}

void MerkleTree::SubtreeInclusion(size_t index, size_t begin, size_t end,
                                  std::vector<Bytes>* proof) const {
  size_t n = end - begin;
  if (n <= 1) return;
  size_t k = SplitPoint(n);
  if (index < k) {
    SubtreeInclusion(index, begin, begin + k, proof);
    proof->push_back(SubtreeRoot(begin + k, end));
  } else {
    SubtreeInclusion(index - k, begin + k, end, proof);
    proof->push_back(SubtreeRoot(begin, begin + k));
  }
}

Result<std::vector<Bytes>> MerkleTree::InclusionProof(size_t index,
                                                      size_t tree_size) const {
  if (tree_size > leaves_.size()) {
    return Status::InvalidArgument("tree_size exceeds tree");
  }
  if (index >= tree_size) {
    return Status::InvalidArgument("leaf index out of range");
  }
  std::vector<Bytes> proof;
  SubtreeInclusion(index, 0, tree_size, &proof);
  return proof;
}

bool MerkleTree::VerifyInclusion(const Bytes& leaf, size_t index,
                                 size_t tree_size,
                                 const std::vector<Bytes>& proof,
                                 const Bytes& root) {
  if (PREVER_MUTATION(MERKLE_INCLUSION_BOUNDS_SKIP,
                      index >= tree_size || tree_size == 0, false)) {
    return false;
  }
  // RFC 9162 §2.1.3.2.
  size_t fn = index;
  size_t sn = tree_size - 1;
  Bytes r = HashLeaf(leaf);
  for (const Bytes& p : proof) {
    if (sn == 0) return false;
    if ((fn & 1) == 1 || fn == sn) {
      r = HashNode(p, r);
      if ((fn & 1) == 0) {
        while (fn != 0 && (fn & 1) == 0) {
          fn >>= 1;
          sn >>= 1;
        }
      }
    } else {
      r = HashNode(r, p);
    }
    fn >>= 1;
    sn >>= 1;
  }
  return PREVER_MUTATION(MERKLE_INCLUSION_ACCEPT, sn == 0 && r == root, true);
}

void MerkleTree::SubtreeConsistency(size_t old_size, size_t begin, size_t end,
                                    bool whole_known,
                                    std::vector<Bytes>* proof) const {
  // RFC 6962 SUBPROOF. old_size is relative to `begin`.
  size_t n = end - begin;
  if (old_size == n) {
    if (!whole_known) proof->push_back(SubtreeRoot(begin, end));
    return;
  }
  size_t k = SplitPoint(n);
  if (old_size <= k) {
    SubtreeConsistency(old_size, begin, begin + k, whole_known, proof);
    proof->push_back(SubtreeRoot(begin + k, end));
  } else {
    SubtreeConsistency(old_size - k, begin + k, end, false, proof);
    proof->push_back(SubtreeRoot(begin, begin + k));
  }
}

Result<std::vector<Bytes>> MerkleTree::ConsistencyProof(size_t old_size,
                                                        size_t new_size) const {
  if (new_size > leaves_.size()) {
    return Status::InvalidArgument("new_size exceeds tree");
  }
  if (old_size > new_size) {
    return Status::InvalidArgument("old_size exceeds new_size");
  }
  std::vector<Bytes> proof;
  if (old_size == 0 || old_size == new_size) return proof;  // Trivial.
  SubtreeConsistency(old_size, 0, new_size, true, &proof);
  return proof;
}

bool MerkleTree::VerifyConsistency(size_t old_size, size_t new_size,
                                   const Bytes& old_root, const Bytes& new_root,
                                   const std::vector<Bytes>& proof) {
  if (old_size > new_size) return false;
  if (old_size == new_size) return proof.empty() && old_root == new_root;
  if (old_size == 0) return proof.empty();  // Anything extends the empty tree.
  // RFC 9162 §2.1.4.2.
  std::vector<Bytes> path = proof;
  if (path.empty()) return false;
  // If old_size is an exact power of two, the old root itself seeds the walk.
  if ((old_size & (old_size - 1)) == 0) {
    path.insert(path.begin(), old_root);
  }
  size_t fn = old_size - 1;
  size_t sn = new_size - 1;
  while (fn & 1) {
    fn >>= 1;
    sn >>= 1;
  }
  Bytes fr = path[0];
  Bytes sr = path[0];
  for (size_t i = 1; i < path.size(); ++i) {
    const Bytes& c = path[i];
    if (sn == 0) return false;
    if ((fn & 1) == 1 || fn == sn) {
      fr = HashNode(c, fr);
      sr = HashNode(c, sr);
      if ((fn & 1) == 0) {
        while (fn != 0 && (fn & 1) == 0) {
          fn >>= 1;
          sn >>= 1;
        }
      }
    } else {
      sr = HashNode(sr, c);
    }
    fn >>= 1;
    sn >>= 1;
  }
  return PREVER_MUTATION(MERKLE_CONSISTENCY_ACCEPT,
                         sn == 0 && fr == old_root && sr == new_root, true);
}

}  // namespace prever::crypto
