#include "crypto/montgomery.h"

namespace prever::crypto {

namespace {
/// -n0^{-1} mod 2^32 by Newton iteration (n0 odd).
uint32_t NegInverse32(uint32_t n0) {
  uint32_t x = 1;
  // Each iteration doubles the number of correct low bits: 5 iterations
  // reach 32 bits.
  for (int i = 0; i < 5; ++i) x *= 2 - n0 * x;
  return ~x + 1;  // -x mod 2^32.
}
}  // namespace

Result<MontgomeryContext> MontgomeryContext::Create(const BigInt& modulus) {
  if (modulus.IsNegative() || modulus.IsEven() || modulus <= BigInt(1)) {
    return Status::InvalidArgument("Montgomery modulus must be odd and > 1");
  }
  MontgomeryContext ctx;
  ctx.n_ = modulus;
  ctx.n_limbs_ = modulus.Limbs();
  ctx.k_ = ctx.n_limbs_.size();
  ctx.n_prime_ = NegInverse32(ctx.n_limbs_[0]);
  // R = 2^(32k); R^2 mod n and R mod n via one-time divisions.
  ctx.r2_ = (BigInt(1) << (64 * ctx.k_)).Mod(modulus);
  ctx.one_mont_ = (BigInt(1) << (32 * ctx.k_)).Mod(modulus);
  return ctx;
}

std::vector<uint32_t> MontgomeryContext::PadLimbs(const BigInt& v) const {
  std::vector<uint32_t> out = v.Limbs();
  out.resize(k_, 0);
  return out;
}

BigInt MontgomeryContext::FromPadded(std::vector<uint32_t> limbs) const {
  return BigInt::FromLimbs(std::move(limbs));
}

void MontgomeryContext::MontMulLimbs(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b,
                                     std::vector<uint32_t>* out) const {
  // CIOS (coarsely integrated operand scanning), Koç et al.
  const size_t k = k_;
  std::vector<uint32_t> t(k + 2, 0);
  for (size_t i = 0; i < k; ++i) {
    // t += a[i] * b.
    uint64_t carry = 0;
    uint64_t ai = a[i];
    for (size_t j = 0; j < k; ++j) {
      uint64_t cur = t[j] + ai * b[j] + carry;
      t[j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    uint64_t cur = t[k] + carry;
    t[k] = static_cast<uint32_t>(cur);
    t[k + 1] = static_cast<uint32_t>(cur >> 32);

    // Eliminate the lowest limb: m = t[0] * n' mod 2^32; t = (t + m*n) / 2^32.
    uint32_t m = t[0] * n_prime_;
    cur = t[0] + static_cast<uint64_t>(m) * n_limbs_[0];
    carry = cur >> 32;
    for (size_t j = 1; j < k; ++j) {
      cur = t[j] + static_cast<uint64_t>(m) * n_limbs_[j] + carry;
      t[j - 1] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    cur = static_cast<uint64_t>(t[k]) + carry;
    t[k - 1] = static_cast<uint32_t>(cur);
    t[k] = t[k + 1] + static_cast<uint32_t>(cur >> 32);
    t[k + 1] = 0;
  }
  // Conditional subtraction: result may be in [0, 2n).
  bool ge = t[k] != 0;
  if (!ge) {
    ge = true;
    for (size_t j = k; j-- > 0;) {
      if (t[j] != n_limbs_[j]) {
        ge = t[j] > n_limbs_[j];
        break;
      }
    }
  }
  if (ge) {
    int64_t borrow = 0;
    for (size_t j = 0; j < k; ++j) {
      int64_t diff = static_cast<int64_t>(t[j]) - n_limbs_[j] - borrow;
      if (diff < 0) {
        diff += 1LL << 32;
        borrow = 1;
      } else {
        borrow = 0;
      }
      t[j] = static_cast<uint32_t>(diff);
    }
  }
  t.resize(k);
  *out = std::move(t);
}

BigInt MontgomeryContext::MulMont(const BigInt& a_mont,
                                  const BigInt& b_mont) const {
  std::vector<uint32_t> out;
  MontMulLimbs(PadLimbs(a_mont), PadLimbs(b_mont), &out);
  return FromPadded(std::move(out));
}

BigInt MontgomeryContext::ToMontgomery(const BigInt& a) const {
  return MulMont(a, r2_);
}

BigInt MontgomeryContext::FromMontgomery(const BigInt& a_mont) const {
  return MulMont(a_mont, BigInt(1));
}

BigInt MontgomeryContext::PowMod(const BigInt& base, const BigInt& exp) const {
  BigInt b = base.Mod(n_);
  if (n_ == BigInt(1)) return BigInt();
  std::vector<uint32_t> acc = PadLimbs(one_mont_);
  std::vector<uint32_t> b_mont = PadLimbs(ToMontgomery(b));
  std::vector<uint32_t> tmp;
  size_t bits = exp.BitLength();
  for (size_t i = bits; i-- > 0;) {
    MontMulLimbs(acc, acc, &tmp);
    acc.swap(tmp);
    if (exp.Bit(i)) {
      MontMulLimbs(acc, b_mont, &tmp);
      acc.swap(tmp);
    }
  }
  return FromMontgomery(FromPadded(std::move(acc)));
}

}  // namespace prever::crypto
