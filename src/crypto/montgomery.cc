#include "crypto/montgomery.h"

#include <map>
#include <mutex>
#include <utility>

namespace prever::crypto {

namespace {

/// -n0^{-1} mod 2^64 by Newton iteration (n0 odd). Each iteration doubles
/// the number of correct low bits: 6 iterations reach 64 bits.
uint64_t NegInverse64(uint64_t n0) {
  uint64_t x = 1;
  for (int i = 0; i < 6; ++i) x *= 2 - n0 * x;
  return ~x + 1;  // -x mod 2^64.
}

/// Sliding-window width for an exponent of `bits` bits: the usual
/// precompute-vs-savings balance (2^(w-1) table entries against ~bits/(w+1)
/// saved multiplications).
size_t WindowBits(size_t bits) {
  if (bits >= 512) return 5;
  if (bits >= 128) return 4;
  if (bits >= 24) return 3;
  if (bits >= 8) return 2;
  return 1;
}

}  // namespace

Result<MontgomeryContext> MontgomeryContext::Create(const BigInt& modulus) {
  if (modulus.IsNegative() || modulus.IsEven() || modulus <= BigInt(1)) {
    return Status::InvalidArgument("Montgomery modulus must be odd and > 1");
  }
  MontgomeryContext ctx;
  ctx.n_ = modulus;
  const std::vector<uint32_t>& limbs32 = modulus.Limbs();
  ctx.k_ = (limbs32.size() + 1) / 2;
  ctx.n64_.assign(ctx.k_, 0);
  for (size_t i = 0; i < limbs32.size(); ++i) {
    ctx.n64_[i / 2] |= static_cast<uint64_t>(limbs32[i]) << (32 * (i % 2));
  }
  ctx.n_prime_ = NegInverse64(ctx.n64_[0]);
  // R = 2^(64k); R^2 mod n and R mod n via one-time divisions.
  ctx.r2_ = ctx.Pack((BigInt(1) << (128 * ctx.k_)).Mod(modulus));
  ctx.one_ = ctx.Pack((BigInt(1) << (64 * ctx.k_)).Mod(modulus));
  ctx.unit_.assign(ctx.k_, 0);
  ctx.unit_[0] = 1;
  return ctx;
}

Result<std::shared_ptr<const MontgomeryContext>> MontgomeryContext::Shared(
    const BigInt& modulus) {
  static std::mutex mu;
  static auto* cache =
      new std::map<std::vector<uint32_t>,
                   std::shared_ptr<const MontgomeryContext>>();
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache->find(modulus.Limbs());
    if (it != cache->end()) return it->second;
  }
  // Build outside the lock: construction costs a division and may race with
  // other threads building the same context, in which case last-in wins
  // (both are equivalent immutable values).
  PREVER_ASSIGN_OR_RETURN(MontgomeryContext ctx, Create(modulus));
  auto shared = std::make_shared<const MontgomeryContext>(std::move(ctx));
  std::lock_guard<std::mutex> lock(mu);
  // Transient moduli (e.g. Miller–Rabin candidates during keygen) would
  // otherwise grow the cache without bound; a flush is cheap because live
  // users hold shared_ptrs.
  if (cache->size() >= 256) cache->clear();
  (*cache)[modulus.Limbs()] = shared;
  return shared;
}

MontgomeryContext::Limbs MontgomeryContext::Pack(const BigInt& v) const {
  const std::vector<uint32_t>& limbs32 = v.Limbs();
  Limbs out(k_, 0);
  for (size_t i = 0; i < limbs32.size() && i / 2 < k_; ++i) {
    out[i / 2] |= static_cast<uint64_t>(limbs32[i]) << (32 * (i % 2));
  }
  return out;
}

BigInt MontgomeryContext::Unpack(const Limbs& v) const {
  std::vector<uint32_t> limbs32(v.size() * 2);
  for (size_t i = 0; i < v.size(); ++i) {
    limbs32[2 * i] = static_cast<uint32_t>(v[i]);
    limbs32[2 * i + 1] = static_cast<uint32_t>(v[i] >> 32);
  }
  return BigInt::FromLimbs(std::move(limbs32));
}

void MontgomeryContext::MontMulRaw(const uint64_t* a, const uint64_t* b,
                                   uint64_t* t) const {
  // CIOS (coarsely integrated operand scanning), Koç et al., on 64-bit
  // limbs with 128-bit accumulation.
  const size_t k = k_;
  const uint64_t* n = n64_.data();
  for (size_t j = 0; j < k + 2; ++j) t[j] = 0;
  for (size_t i = 0; i < k; ++i) {
    // t += a[i] * b.
    unsigned __int128 carry = 0;
    const uint64_t ai = a[i];
    for (size_t j = 0; j < k; ++j) {
      unsigned __int128 cur =
          t[j] + static_cast<unsigned __int128>(ai) * b[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    unsigned __int128 cur = t[k] + carry;
    t[k] = static_cast<uint64_t>(cur);
    t[k + 1] = static_cast<uint64_t>(cur >> 64);

    // Eliminate the lowest limb: m = t[0] * n' mod 2^64; t = (t + m*n)/2^64.
    const uint64_t m = t[0] * n_prime_;
    cur = t[0] + static_cast<unsigned __int128>(m) * n[0];
    carry = cur >> 64;
    for (size_t j = 1; j < k; ++j) {
      cur = t[j] + static_cast<unsigned __int128>(m) * n[j] + carry;
      t[j - 1] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    cur = static_cast<unsigned __int128>(t[k]) + carry;
    t[k - 1] = static_cast<uint64_t>(cur);
    t[k] = t[k + 1] + static_cast<uint64_t>(cur >> 64);
    t[k + 1] = 0;
  }
  // Conditional subtraction: result may be in [0, 2n).
  bool ge = t[k] != 0;
  if (!ge) {
    ge = true;
    for (size_t j = k; j-- > 0;) {
      if (t[j] != n[j]) {
        ge = t[j] > n[j];
        break;
      }
    }
  }
  if (ge) {
    unsigned __int128 borrow = 0;
    for (size_t j = 0; j < k; ++j) {
      unsigned __int128 diff =
          static_cast<unsigned __int128>(t[j]) - n[j] - borrow;
      t[j] = static_cast<uint64_t>(diff);
      borrow = (diff >> 64) ? 1 : 0;
    }
  }
}

void MontgomeryContext::MulMontLimbs(const Limbs& a, const Limbs& b,
                                     Limbs* out) const {
  // Thread-local scratch: the kernel runs tens of thousands of times per
  // engine operation, so a malloc per product would rival the multiply
  // itself. Writing through scratch also makes aliasing (`out` == `a`/`b`)
  // safe.
  static thread_local Limbs scratch;
  scratch.resize(k_ + 2);
  MontMulRaw(a.data(), b.data(), scratch.data());
  out->assign(scratch.begin(), scratch.begin() + k_);
}

MontgomeryContext::Limbs MontgomeryContext::PackMont(const BigInt& a) const {
  Limbs out;
  MulMontLimbs(Pack(a), r2_, &out);
  return out;
}

BigInt MontgomeryContext::UnpackMont(const Limbs& a) const {
  Limbs out;
  MulMontLimbs(a, unit_, &out);
  return Unpack(out);
}

MontgomeryContext::Limbs MontgomeryContext::OneMont() const { return one_; }

BigInt MontgomeryContext::MulMont(const BigInt& a_mont,
                                  const BigInt& b_mont) const {
  Limbs out;
  MulMontLimbs(Pack(a_mont), Pack(b_mont), &out);
  return Unpack(out);
}

BigInt MontgomeryContext::ToMontgomery(const BigInt& a) const {
  return Unpack(PackMont(a));
}

BigInt MontgomeryContext::FromMontgomery(const BigInt& a_mont) const {
  return UnpackMont(Pack(a_mont));
}

MontgomeryContext::Limbs MontgomeryContext::PowMont(const Limbs& base_mont,
                                                    const BigInt& exp) const {
  const size_t bits = exp.BitLength();
  if (bits == 0) return one_;

  // Sliding window over precomputed odd powers base^1, base^3, ...,
  // base^(2^w - 1).
  const size_t w = WindowBits(bits);
  std::vector<Limbs> odd(size_t{1} << (w - 1));
  odd[0] = base_mont;
  if (w > 1) {
    Limbs sq;
    MulMontLimbs(base_mont, base_mont, &sq);
    for (size_t i = 1; i < odd.size(); ++i) {
      MulMontLimbs(odd[i - 1], sq, &odd[i]);
    }
  }

  Limbs acc = one_;
  Limbs scratch(k_ + 2);
  uint64_t* t = scratch.data();
  auto square = [&] {
    MontMulRaw(acc.data(), acc.data(), t);
    std::copy(t, t + k_, acc.begin());
  };
  auto mul_by = [&](const Limbs& v) {
    MontMulRaw(acc.data(), v.data(), t);
    std::copy(t, t + k_, acc.begin());
  };

  size_t i = bits;
  while (i > 0) {
    if (!exp.Bit(i - 1)) {
      square();
      --i;
      continue;
    }
    // Greedy window [l, i): starts at a set bit, ends at a set bit.
    size_t l = i >= w ? i - w : 0;
    while (!exp.Bit(l)) ++l;
    uint64_t digit = 0;
    for (size_t j = i; j-- > l;) digit = (digit << 1) | (exp.Bit(j) ? 1 : 0);
    for (size_t j = 0; j < i - l; ++j) square();
    mul_by(odd[(digit - 1) >> 1]);
    i = l;
  }
  return acc;
}

BigInt MontgomeryContext::PowMod(const BigInt& base, const BigInt& exp) const {
  return UnpackMont(PowMont(PackMont(base.Mod(n_)), exp));
}

FixedBaseTable::FixedBaseTable(std::shared_ptr<const MontgomeryContext> ctx,
                               const BigInt& base, size_t max_exp_bits,
                               size_t window_bits)
    : ctx_(std::move(ctx)),
      base_(base.Mod(ctx_->modulus())),
      window_bits_(window_bits == 0 ? 1 : window_bits),
      max_exp_bits_(max_exp_bits == 0 ? 1 : max_exp_bits) {
  windows_ = (max_exp_bits_ + window_bits_ - 1) / window_bits_;
  const size_t digits = (size_t{1} << window_bits_) - 1;
  table_.resize(windows_ * digits);
  // Entry (i, d) = base^(d * 2^(w*i)): within a window the entries are a
  // multiplication chain by `stride` = base^(2^(w*i)); the next window's
  // stride is this window's last entry times `stride` once more.
  MontgomeryContext::Limbs stride = ctx_->PackMont(base_);
  for (size_t i = 0; i < windows_; ++i) {
    table_[i * digits] = stride;
    for (size_t d = 1; d < digits; ++d) {
      ctx_->MulMontLimbs(table_[i * digits + d - 1], stride,
                         &table_[i * digits + d]);
    }
    if (i + 1 < windows_) {
      ctx_->MulMontLimbs(table_[i * digits + digits - 1], stride, &stride);
    }
  }
}

MontgomeryContext::Limbs FixedBaseTable::PowMont(const BigInt& exp) const {
  const size_t bits = exp.BitLength();
  if (bits == 0) return ctx_->OneMont();
  if (exp.IsNegative() || bits > max_exp_bits_) {
    // Out of the table's domain: generic path.
    return ctx_->PowMont(ctx_->PackMont(base_), exp);
  }
  const size_t digits = (size_t{1} << window_bits_) - 1;
  MontgomeryContext::Limbs acc = ctx_->OneMont();
  const size_t used_windows = (bits + window_bits_ - 1) / window_bits_;
  for (size_t i = 0; i < used_windows; ++i) {
    uint64_t d = 0;
    for (size_t j = window_bits_; j-- > 0;) {
      d = (d << 1) | (exp.Bit(i * window_bits_ + j) ? 1 : 0);
    }
    if (d != 0) {
      ctx_->MulMontLimbs(acc, table_[i * digits + (d - 1)], &acc);
    }
  }
  return acc;
}

BigInt FixedBaseTable::PowMod(const BigInt& exp) const {
  return ctx_->UnpackMont(PowMont(exp));
}

}  // namespace prever::crypto
