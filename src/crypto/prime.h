#ifndef PREVER_CRYPTO_PRIME_H_
#define PREVER_CRYPTO_PRIME_H_

#include "crypto/bigint.h"
#include "crypto/drbg.h"

namespace prever::crypto {

/// Miller–Rabin probabilistic primality test with `rounds` random witnesses
/// (error probability <= 4^-rounds), after trial division by small primes.
bool IsProbablePrime(const BigInt& n, Drbg& drbg, int rounds = 20);

/// Generates a random odd prime with exactly `bits` bits.
BigInt GeneratePrime(size_t bits, Drbg& drbg);

/// Generates a prime p with exactly `bits` bits such that p != avoid.
/// Used by RSA/Paillier keygen to guarantee distinct factors.
BigInt GenerateDistinctPrime(size_t bits, const BigInt& avoid, Drbg& drbg);

}  // namespace prever::crypto

#endif  // PREVER_CRYPTO_PRIME_H_
