#ifndef PREVER_CRYPTO_DRBG_H_
#define PREVER_CRYPTO_DRBG_H_

#include "common/bytes.h"
#include "crypto/bigint.h"

namespace prever::crypto {

/// Deterministic random bit generator in the style of NIST HMAC-DRBG
/// (SP 800-90A, simplified: no personalization/reseed counters). All key and
/// nonce generation in PReVer draws from a Drbg so experiments are seeded
/// and reproducible.
///
/// THREADING CONTRACT: a Drbg is single-threaded state — every Generate
/// advances (key, V), and concurrent calls would both corrupt the state and
/// destroy the determinism the simulations rely on. Never share an instance
/// across threads; give each worker its own child via Fork(). Forking draws
/// 32 bytes from the parent, so child streams are independent of each other
/// and of the parent's subsequent output, and the fork order (not thread
/// scheduling) determines every stream.
class Drbg {
 public:
  /// Seeds from arbitrary entropy bytes.
  explicit Drbg(const Bytes& seed);
  /// Convenience: seeds from a 64-bit test seed.
  explicit Drbg(uint64_t seed);

  /// Generates `n` pseudorandom bytes.
  Bytes Generate(size_t n);

  /// Mixes additional entropy into the state.
  void Reseed(const Bytes& entropy);

  /// Derives an independent child generator (seeded from 32 bytes of this
  /// generator's output). The deterministic way to hand randomness to a
  /// worker thread — see the threading contract above.
  Drbg Fork();

  /// Uniform BigInt with exactly `bits` bits (top bit set) — used for prime
  /// candidate generation.
  BigInt RandomBits(size_t bits);

  /// Uniform BigInt in [0, bound) via rejection sampling; bound must be > 0.
  BigInt RandomBelow(const BigInt& bound);

  /// Uniform BigInt in [1, bound); bound must be > 1.
  BigInt RandomNonZeroBelow(const BigInt& bound);

  uint64_t RandomU64();

 private:
  void Update(const Bytes& provided);

  Bytes key_;  // 32 bytes.
  Bytes v_;    // 32 bytes.
};

}  // namespace prever::crypto

#endif  // PREVER_CRYPTO_DRBG_H_
