#ifndef PREVER_CRYPTO_SHA256_H_
#define PREVER_CRYPTO_SHA256_H_

#include <cstdint>

#include "common/bytes.h"

namespace prever::crypto {

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;

  Sha256();

  /// Absorbs more input.
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }

  /// Finalizes and returns the 32-byte digest. The object must not be
  /// updated afterwards.
  Bytes Finish();

  /// One-shot convenience.
  static Bytes Hash(const Bytes& data);
  static Bytes Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

}  // namespace prever::crypto

#endif  // PREVER_CRYPTO_SHA256_H_
