#ifndef PREVER_CRYPTO_PAILLIER_H_
#define PREVER_CRYPTO_PAILLIER_H_

#include "common/status.h"
#include "crypto/bigint.h"
#include "crypto/drbg.h"

namespace prever::crypto {

/// Paillier additively homomorphic encryption (the paper's RC1 suggests FHE
/// [36]; the constraint classes PReVer motivates are linear, for which
/// Paillier suffices — see DESIGN.md §2).
///
/// Public operations on ciphertexts:
///   Enc(a) * Enc(b) = Enc(a + b)         (Add)
///   Enc(a)^k        = Enc(a * k)         (MulPlain)
/// Plaintext space is Z_n. Negative integers are represented as n - |v|
/// (two's-complement style); DecryptSigned folds values > n/2 back.
struct PaillierPublicKey {
  BigInt n;        ///< Modulus.
  BigInt n2;       ///< n^2, cached.
  BigInt g;        ///< Generator, fixed to n + 1.

  size_t ModulusBits() const { return n.BitLength(); }
};

struct PaillierPrivateKey {
  BigInt lambda;  ///< lcm(p-1, q-1).
  BigInt mu;      ///< (L(g^lambda mod n^2))^{-1} mod n.

  /// CRT acceleration state, retained at keygen (empty `p` disables the CRT
  /// path — e.g. for keys reconstructed from (lambda, mu) alone). Working
  /// mod p^2 and q^2 with half-width exponents costs ~1/4 per half, so
  /// decryption runs ~3-4x faster than the direct c^lambda mod n^2 route.
  /// Holding the factors is safe under PReVer's key-custody model: the
  /// private key never leaves the data owner / regulator, who could factor
  /// n from (lambda, n) anyway (DESIGN.md "Crypto acceleration").
  BigInt p;         ///< First prime factor of n.
  BigInt q;         ///< Second prime factor.
  BigInt p2;        ///< p^2.
  BigInt q2;        ///< q^2.
  BigInt hp;        ///< (L_p(g^(p-1) mod p^2))^{-1} mod p.
  BigInt hq;        ///< (L_q(g^(q-1) mod q^2))^{-1} mod q.
  BigInt q_inv_p;   ///< q^{-1} mod p (Garner recombination).

  bool HasCrt() const { return !p.IsZero(); }
};

struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

/// Opaque ciphertext wrapper; prevents accidentally mixing ciphertexts with
/// plaintext BigInts in engine code.
struct PaillierCiphertext {
  BigInt c;

  bool operator==(const PaillierCiphertext& o) const { return c == o.c; }
};

/// Generates a key pair with modulus of `modulus_bits` bits.
Result<PaillierKeyPair> PaillierGenerateKey(size_t modulus_bits, Drbg& drbg);

/// Encrypts m in [0, n). Fresh randomness from `drbg`.
Result<PaillierCiphertext> PaillierEncrypt(const PaillierPublicKey& pub,
                                           const BigInt& m, Drbg& drbg);

/// Encrypts a possibly negative int64 using the n - |v| embedding.
Result<PaillierCiphertext> PaillierEncryptSigned(const PaillierPublicKey& pub,
                                                 int64_t m, Drbg& drbg);

/// Decrypts to the canonical representative in [0, n). Uses the CRT fast
/// path when the private key retains its prime factors (keys from
/// PaillierGenerateKey always do), else the direct lambda/mu route.
Result<BigInt> PaillierDecrypt(const PaillierKeyPair& key,
                               const PaillierCiphertext& ct);

/// Direct (non-CRT) decryption via c^lambda mod n^2 — the differential-test
/// oracle for the CRT path; also the only route for keys without factors.
Result<BigInt> PaillierDecryptNoCrt(const PaillierKeyPair& key,
                                    const PaillierCiphertext& ct);

/// Decrypts and folds residues > n/2 to negative numbers; errors if the
/// magnitude exceeds int64.
Result<int64_t> PaillierDecryptSigned(const PaillierKeyPair& key,
                                      const PaillierCiphertext& ct);

/// Homomorphic addition of plaintexts.
PaillierCiphertext PaillierAdd(const PaillierPublicKey& pub,
                               const PaillierCiphertext& a,
                               const PaillierCiphertext& b);

/// Adds plaintext k to the encrypted value without decrypting.
PaillierCiphertext PaillierAddPlain(const PaillierPublicKey& pub,
                                    const PaillierCiphertext& a,
                                    const BigInt& k);

/// Multiplies the encrypted value by plaintext k.
PaillierCiphertext PaillierMulPlain(const PaillierPublicKey& pub,
                                    const PaillierCiphertext& a,
                                    const BigInt& k);

/// Re-randomizes the ciphertext: same plaintext, fresh randomness — used by
/// the private-update path so written ciphertexts are unlinkable to reads.
Result<PaillierCiphertext> PaillierRerandomize(const PaillierPublicKey& pub,
                                               const PaillierCiphertext& a,
                                               Drbg& drbg);

}  // namespace prever::crypto

#endif  // PREVER_CRYPTO_PAILLIER_H_
