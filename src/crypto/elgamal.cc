#include "crypto/elgamal.h"

#include <map>

#include "crypto/montgomery.h"

namespace prever::crypto {

namespace {

Result<ElGamalCiphertext> EncryptWithKey(const PedersenParams& params,
                                         const FixedBaseTable& y_table,
                                         int64_t m, Drbg& drbg) {
  if (m < 0) return Status::InvalidArgument("plaintext must be >= 0");
  const PedersenAccel& accel = GetPedersenAccel(params);
  BigInt r = drbg.RandomBelow(params.q);
  ElGamalCiphertext ct;
  ct.a = accel.g.PowMod(r);
  // b = g^m * y^r, composed in the Montgomery domain.
  MontgomeryContext::Limbs b = accel.g.PowMont(BigInt(m));
  accel.ctx->MulMontLimbs(b, y_table.PowMont(r), &b);
  ct.b = accel.ctx->UnpackMont(b);
  return ct;
}

std::unique_ptr<FixedBaseTable> MakeKeyTable(const PedersenParams& params,
                                             const BigInt& y) {
  return std::make_unique<FixedBaseTable>(
      MontgomeryContext::Shared(params.p).value(), y, params.q.BitLength());
}

ElGamalCiphertext AddImpl(const PedersenParams& params,
                          const ElGamalCiphertext& x,
                          const ElGamalCiphertext& y) {
  return ElGamalCiphertext{x.a.MulMod(y.a, params.p),
                           x.b.MulMod(y.b, params.p)};
}

}  // namespace

Result<int64_t> RecoverDiscreteLog(const PedersenParams& params,
                                   const BigInt& target, int64_t max) {
  if (max < 0) return Status::InvalidArgument("max must be >= 0");
  auto shared = MontgomeryContext::Shared(params.p);
  if (!shared.ok()) return shared.status();
  const MontgomeryContext* ctx = shared->get();
  BigInt g_mont = ctx->ToMontgomery(params.g.Mod(params.p));
  BigInt target_mont = ctx->ToMontgomery(target.Mod(params.p));

  // Small ranges: incremental scan beats table construction.
  constexpr int64_t kScanCutoff = 1024;
  if (max <= kScanCutoff) {
    BigInt acc = ctx->ToMontgomery(BigInt(1));
    for (int64_t m = 0; m <= max; ++m) {
      if (acc == target_mont) return m;
      acc = ctx->MulMont(acc, g_mont);
    }
    return Status::NotFound("discrete log not in [0, max]");
  }

  // Baby-step giant-step: O(sqrt(max)) group operations.
  int64_t step = 1;
  while (step * step <= max) ++step;  // step = ceil(sqrt(max+1)).
  std::map<Bytes, int64_t> baby;      // g^j (canonical bytes) -> j.
  BigInt acc = ctx->ToMontgomery(BigInt(1));
  for (int64_t j = 0; j < step; ++j) {
    baby.emplace(acc.ToBytes(), j);
    acc = ctx->MulMont(acc, g_mont);
  }
  // giant = g^{-step} in the Montgomery domain.
  auto g_inv = params.g.InvMod(params.p);
  if (!g_inv.ok()) return g_inv.status();
  BigInt giant =
      ctx->ToMontgomery(g_inv->PowMod(BigInt(step), params.p));
  BigInt gamma = target_mont;
  for (int64_t i = 0; i * step <= max; ++i) {
    auto it = baby.find(gamma.ToBytes());
    if (it != baby.end()) {
      int64_t m = i * step + it->second;
      if (m <= max) return m;
      return Status::NotFound("discrete log not in [0, max]");
    }
    gamma = ctx->MulMont(gamma, giant);
  }
  return Status::NotFound("discrete log not in [0, max]");
}

ElGamal::ElGamal(const PedersenParams& params, Drbg& drbg)
    : params_(&params) {
  x_ = drbg.RandomNonZeroBelow(params.q);
  y_ = GetPedersenAccel(params).g.PowMod(x_);
  y_table_ = MakeKeyTable(params, y_);
}

Result<ElGamalCiphertext> ElGamal::Encrypt(int64_t m, Drbg& drbg) const {
  return EncryptWithKey(*params_, *y_table_, m, drbg);
}

Result<int64_t> ElGamal::Decrypt(const ElGamalCiphertext& ct,
                                 int64_t max_plaintext) const {
  // g^m = b / a^x.
  PREVER_ASSIGN_OR_RETURN(BigInt ax_inv,
                          ct.a.PowMod(x_, params_->p).InvMod(params_->p));
  BigInt gm = ct.b.MulMod(ax_inv, params_->p);
  return RecoverDiscreteLog(*params_, gm, max_plaintext);
}

ElGamalCiphertext ElGamal::Add(const PedersenParams& params,
                               const ElGamalCiphertext& x,
                               const ElGamalCiphertext& y) {
  return AddImpl(params, x, y);
}

ThresholdElGamal::ThresholdElGamal(const PedersenParams& params,
                                   size_t num_parties, Drbg& drbg)
    : params_(&params) {
  // Simulated DKG: each party samples x_i and publishes g^{x_i}; the joint
  // key is the product. (A real deployment adds knowledge proofs per party;
  // semi-honest model here, consistent with the MPC engine.)
  const PedersenAccel& accel = GetPedersenAccel(params);
  BigInt y(1);
  shares_.reserve(num_parties);
  for (size_t i = 0; i < num_parties; ++i) {
    BigInt x_i = drbg.RandomNonZeroBelow(params.q);
    y = y.MulMod(accel.g.PowMod(x_i), params.p);
    shares_.push_back(std::move(x_i));
  }
  y_ = std::move(y);
  y_table_ = MakeKeyTable(params, y_);
}

Result<ElGamalCiphertext> ThresholdElGamal::Encrypt(int64_t m,
                                                    Drbg& drbg) const {
  return EncryptWithKey(*params_, *y_table_, m, drbg);
}

Result<BigInt> ThresholdElGamal::PartialDecrypt(
    size_t party, const ElGamalCiphertext& ct) const {
  if (party >= shares_.size()) {
    return Status::InvalidArgument("no such party");
  }
  return ct.a.PowMod(shares_[party], params_->p);
}

Result<int64_t> ThresholdElGamal::Combine(const ElGamalCiphertext& ct,
                                          const std::vector<BigInt>& partials,
                                          int64_t max_plaintext) const {
  if (partials.size() != shares_.size()) {
    return Status::InvalidArgument(
        "n-of-n threshold: need a partial decryption from every party");
  }
  // prod a^{x_i} = a^{sum x_i} = a^x.
  BigInt ax(1);
  for (const BigInt& partial : partials) {
    ax = ax.MulMod(partial, params_->p);
  }
  PREVER_ASSIGN_OR_RETURN(BigInt ax_inv, ax.InvMod(params_->p));
  BigInt gm = ct.b.MulMod(ax_inv, params_->p);
  return RecoverDiscreteLog(*params_, gm, max_plaintext);
}

ElGamalCiphertext ThresholdElGamal::Add(const PedersenParams& params,
                                        const ElGamalCiphertext& x,
                                        const ElGamalCiphertext& y) {
  return AddImpl(params, x, y);
}

}  // namespace prever::crypto
