#ifndef PREVER_CRYPTO_BIGINT_H_
#define PREVER_CRYPTO_BIGINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace prever::crypto {

/// Arbitrary-precision signed integer, implemented from scratch (no GMP).
///
/// Representation: sign-magnitude with 32-bit limbs, least-significant limb
/// first, no trailing zero limbs (zero is an empty limb vector with positive
/// sign). 32-bit limbs keep schoolbook multiplication and Knuth-D division
/// simple and portable (products fit in uint64_t).
///
/// This class backs all public-key operations in PReVer (RSA, Paillier,
/// Pedersen commitments). It favors clarity over constant-time behavior —
/// acceptable for a research prototype, documented in DESIGN.md §6.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From a machine integer.
  BigInt(int64_t v);  // NOLINT: deliberate implicit conversion for literals.
  BigInt(uint64_t v, bool /*unsigned_tag*/);

  static BigInt Zero() { return BigInt(); }
  static BigInt One() { return BigInt(1); }

  /// Parses base-10 (optional leading '-') or base-16 ("0x" prefix or
  /// explicit base argument).
  static Result<BigInt> FromDecimal(std::string_view s);
  static Result<BigInt> FromHex(std::string_view s);

  /// Big-endian unsigned magnitude (sign is dropped; use for crypto values
  /// which are always non-negative).
  static BigInt FromBytes(const Bytes& be);
  Bytes ToBytes() const;
  /// Big-endian, left-padded with zeros to exactly `n` bytes. Fails if the
  /// magnitude does not fit.
  Result<Bytes> ToBytesPadded(size_t n) const;

  std::string ToDecimalString() const;
  std::string ToHexString() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsNegative() const { return negative_; }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool IsEven() const { return !IsOdd(); }

  /// Number of significant bits of the magnitude (0 for zero).
  size_t BitLength() const;
  /// Bit i of the magnitude (LSB = bit 0).
  bool Bit(size_t i) const;

  /// Value as int64 if it fits, else error.
  Result<int64_t> ToInt64() const;
  /// Value as uint64 if non-negative and fits, else error.
  Result<uint64_t> ToUint64() const;

  int Compare(const BigInt& other) const;  ///< -1, 0, +1.

  BigInt operator-() const;
  BigInt operator+(const BigInt& rhs) const;
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  /// Truncated (C-style) quotient; requires rhs != 0.
  BigInt operator/(const BigInt& rhs) const;
  /// C-style remainder (sign follows dividend); requires rhs != 0.
  BigInt operator%(const BigInt& rhs) const;
  BigInt operator<<(size_t bits) const;
  BigInt operator>>(size_t bits) const;

  BigInt& operator+=(const BigInt& rhs) { return *this = *this + rhs; }
  BigInt& operator-=(const BigInt& rhs) { return *this = *this - rhs; }
  BigInt& operator*=(const BigInt& rhs) { return *this = *this * rhs; }

  bool operator==(const BigInt& rhs) const { return Compare(rhs) == 0; }
  bool operator!=(const BigInt& rhs) const { return Compare(rhs) != 0; }
  bool operator<(const BigInt& rhs) const { return Compare(rhs) < 0; }
  bool operator<=(const BigInt& rhs) const { return Compare(rhs) <= 0; }
  bool operator>(const BigInt& rhs) const { return Compare(rhs) > 0; }
  bool operator>=(const BigInt& rhs) const { return Compare(rhs) >= 0; }

  /// Euclidean (always non-negative) residue in [0, m); requires m > 0.
  BigInt Mod(const BigInt& m) const;
  /// (this + rhs) mod m, operands already reduced or not.
  BigInt AddMod(const BigInt& rhs, const BigInt& m) const;
  BigInt SubMod(const BigInt& rhs, const BigInt& m) const;
  BigInt MulMod(const BigInt& rhs, const BigInt& m) const;
  /// this^e mod m via square-and-multiply; requires m > 0, e >= 0.
  BigInt PowMod(const BigInt& e, const BigInt& m) const;

  /// Greatest common divisor of magnitudes.
  static BigInt Gcd(const BigInt& a, const BigInt& b);
  static BigInt Lcm(const BigInt& a, const BigInt& b);
  /// Modular inverse; error if gcd(this, m) != 1.
  Result<BigInt> InvMod(const BigInt& m) const;

  /// Divides, returning quotient and remainder with C semantics.
  static void DivMod(const BigInt& num, const BigInt& den, BigInt* quot,
                     BigInt* rem);

  /// Internal plumbing for the Montgomery fast path (montgomery.h): the
  /// little-endian 32-bit limbs of the magnitude, and construction from
  /// them. Not part of the stable public API.
  const std::vector<uint32_t>& Limbs() const { return limbs_; }
  static BigInt FromLimbs(std::vector<uint32_t> limbs);

 private:
  void Trim();
  static int CompareMagnitude(const BigInt& a, const BigInt& b);
  static BigInt AddMagnitude(const BigInt& a, const BigInt& b);
  /// Magnitude product: schoolbook below the Karatsuba threshold, Karatsuba
  /// recursion above it (both inputs treated as non-negative).
  static BigInt MulMagnitude(const BigInt& a, const BigInt& b);
  static BigInt SchoolbookMul(const BigInt& a, const BigInt& b);
  /// Requires |a| >= |b|.
  static BigInt SubMagnitude(const BigInt& a, const BigInt& b);
  static void DivModMagnitude(const BigInt& num, const BigInt& den,
                              BigInt* quot, BigInt* rem);

  std::vector<uint32_t> limbs_;
  bool negative_ = false;
};

}  // namespace prever::crypto

#endif  // PREVER_CRYPTO_BIGINT_H_
