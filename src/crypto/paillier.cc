#include "crypto/paillier.h"

#include "crypto/prime.h"

namespace prever::crypto {

namespace {
/// L(x) = (x - 1) / n, defined for x ≡ 1 (mod n).
BigInt LFunction(const BigInt& x, const BigInt& n) {
  return (x - BigInt(1)) / n;
}
}  // namespace

Result<PaillierKeyPair> PaillierGenerateKey(size_t modulus_bits, Drbg& drbg) {
  if (modulus_bits < 128 || modulus_bits % 2 != 0) {
    return Status::InvalidArgument("modulus_bits must be even and >= 128");
  }
  for (;;) {
    BigInt p = GeneratePrime(modulus_bits / 2, drbg);
    BigInt q = GenerateDistinctPrime(modulus_bits / 2, p, drbg);
    BigInt n = p * q;
    if (n.BitLength() != modulus_bits) continue;
    // With g = n + 1: L(g^lambda mod n^2) = lambda mod n... more precisely
    // g^lambda = 1 + lambda*n (mod n^2), so mu = lambda^{-1} mod n.
    BigInt lambda = BigInt::Lcm(p - BigInt(1), q - BigInt(1));
    auto mu = lambda.InvMod(n);
    if (!mu.ok()) continue;
    PaillierKeyPair kp;
    kp.pub.n = n;
    kp.pub.n2 = n * n;
    kp.pub.g = n + BigInt(1);
    kp.priv.lambda = std::move(lambda);
    kp.priv.mu = std::move(mu).value();
    return kp;
  }
}

Result<PaillierCiphertext> PaillierEncrypt(const PaillierPublicKey& pub,
                                           const BigInt& m, Drbg& drbg) {
  if (m.IsNegative() || m >= pub.n) {
    return Status::InvalidArgument("plaintext out of range [0, n)");
  }
  BigInt r = drbg.RandomNonZeroBelow(pub.n);
  // g^m = (1+n)^m = 1 + m*n (mod n^2): avoids one full PowMod.
  BigInt gm = (BigInt(1) + m * pub.n).Mod(pub.n2);
  BigInt rn = r.PowMod(pub.n, pub.n2);
  return PaillierCiphertext{gm.MulMod(rn, pub.n2)};
}

Result<PaillierCiphertext> PaillierEncryptSigned(const PaillierPublicKey& pub,
                                                 int64_t m, Drbg& drbg) {
  BigInt pt(m);
  if (pt.IsNegative()) pt = pub.n + pt;
  return PaillierEncrypt(pub, pt, drbg);
}

Result<BigInt> PaillierDecrypt(const PaillierKeyPair& key,
                               const PaillierCiphertext& ct) {
  const auto& pub = key.pub;
  if (ct.c.IsNegative() || ct.c >= pub.n2 || ct.c.IsZero()) {
    return Status::InvalidArgument("ciphertext out of range");
  }
  BigInt u = ct.c.PowMod(key.priv.lambda, pub.n2);
  BigInt m = LFunction(u, pub.n).MulMod(key.priv.mu, pub.n);
  return m;
}

Result<int64_t> PaillierDecryptSigned(const PaillierKeyPair& key,
                                      const PaillierCiphertext& ct) {
  PREVER_ASSIGN_OR_RETURN(BigInt m, PaillierDecrypt(key, ct));
  BigInt half = key.pub.n >> 1;
  if (m > half) m = m - key.pub.n;
  return m.ToInt64();
}

PaillierCiphertext PaillierAdd(const PaillierPublicKey& pub,
                               const PaillierCiphertext& a,
                               const PaillierCiphertext& b) {
  return PaillierCiphertext{a.c.MulMod(b.c, pub.n2)};
}

PaillierCiphertext PaillierAddPlain(const PaillierPublicKey& pub,
                                    const PaillierCiphertext& a,
                                    const BigInt& k) {
  BigInt kk = k.Mod(pub.n);
  BigInt gk = (BigInt(1) + kk * pub.n).Mod(pub.n2);
  return PaillierCiphertext{a.c.MulMod(gk, pub.n2)};
}

PaillierCiphertext PaillierMulPlain(const PaillierPublicKey& pub,
                                    const PaillierCiphertext& a,
                                    const BigInt& k) {
  return PaillierCiphertext{a.c.PowMod(k.Mod(pub.n), pub.n2)};
}

Result<PaillierCiphertext> PaillierRerandomize(const PaillierPublicKey& pub,
                                               const PaillierCiphertext& a,
                                               Drbg& drbg) {
  PREVER_ASSIGN_OR_RETURN(PaillierCiphertext zero,
                          PaillierEncrypt(pub, BigInt(0), drbg));
  return PaillierAdd(pub, a, zero);
}

}  // namespace prever::crypto
