#include "crypto/paillier.h"

#include "crypto/prime.h"
#include "mutate/mutation.h"

namespace prever::crypto {

namespace {
/// L(x) = (x - 1) / n, defined for x ≡ 1 (mod n).
BigInt LFunction(const BigInt& x, const BigInt& n) {
  return (x - BigInt(1)) / n;
}
}  // namespace

Result<PaillierKeyPair> PaillierGenerateKey(size_t modulus_bits, Drbg& drbg) {
  if (modulus_bits < 128 || modulus_bits % 2 != 0) {
    return Status::InvalidArgument("modulus_bits must be even and >= 128");
  }
  for (;;) {
    BigInt p = GeneratePrime(modulus_bits / 2, drbg);
    BigInt q = GenerateDistinctPrime(modulus_bits / 2, p, drbg);
    BigInt n = p * q;
    if (n.BitLength() != modulus_bits) continue;
    // With g = n + 1: L(g^lambda mod n^2) = lambda mod n... more precisely
    // g^lambda = 1 + lambda*n (mod n^2), so mu = lambda^{-1} mod n.
    BigInt lambda = BigInt::Lcm(p - BigInt(1), q - BigInt(1));
    auto mu = lambda.InvMod(n);
    if (!mu.ok()) continue;
    // CRT precomputation. With g = 1 + n: g^(p-1) = 1 + (p-1)*n (mod p^2),
    // so L_p of it is (p-1)*q mod p — invertible since p is prime and
    // divides neither p-1 nor q.
    BigInt p2 = p * p;
    BigInt q2 = q * q;
    auto hp = ((p - BigInt(1)) * q).Mod(p).InvMod(p);
    auto hq = ((q - BigInt(1)) * p).Mod(q).InvMod(q);
    auto q_inv_p = q.InvMod(p);
    if (!hp.ok() || !hq.ok() || !q_inv_p.ok()) continue;  // Unreachable.
    PaillierKeyPair kp;
    kp.pub.n = n;
    kp.pub.n2 = n * n;
    kp.pub.g = n + BigInt(1);
    kp.priv.lambda = std::move(lambda);
    kp.priv.mu = std::move(mu).value();
    kp.priv.p = std::move(p);
    kp.priv.q = std::move(q);
    kp.priv.p2 = std::move(p2);
    kp.priv.q2 = std::move(q2);
    kp.priv.hp = std::move(hp).value();
    kp.priv.hq = std::move(hq).value();
    kp.priv.q_inv_p = std::move(q_inv_p).value();
    return kp;
  }
}

Result<PaillierCiphertext> PaillierEncrypt(const PaillierPublicKey& pub,
                                           const BigInt& m, Drbg& drbg) {
  if (PREVER_MUTATION(PAILLIER_ENCRYPT_RANGE_SKIP,
                      m.IsNegative() || m >= pub.n, false)) {
    return Status::InvalidArgument("plaintext out of range [0, n)");
  }
  BigInt r = drbg.RandomNonZeroBelow(pub.n);
  // g^m = (1+n)^m = 1 + m*n (mod n^2): avoids one full PowMod.
  BigInt gm = (BigInt(1) + m * pub.n).Mod(pub.n2);
  BigInt rn = r.PowMod(pub.n, pub.n2);
  return PaillierCiphertext{gm.MulMod(rn, pub.n2)};
}

Result<PaillierCiphertext> PaillierEncryptSigned(const PaillierPublicKey& pub,
                                                 int64_t m, Drbg& drbg) {
  BigInt pt(m);
  if (pt.IsNegative()) pt = pub.n + pt;
  return PaillierEncrypt(pub, pt, drbg);
}

Result<BigInt> PaillierDecryptNoCrt(const PaillierKeyPair& key,
                                    const PaillierCiphertext& ct) {
  const auto& pub = key.pub;
  if (ct.c.IsNegative() || ct.c >= pub.n2 || ct.c.IsZero()) {
    return Status::InvalidArgument("ciphertext out of range");
  }
  BigInt u = ct.c.PowMod(key.priv.lambda, pub.n2);
  BigInt m = LFunction(u, pub.n).MulMod(key.priv.mu, pub.n);
  return m;
}

Result<BigInt> PaillierDecrypt(const PaillierKeyPair& key,
                               const PaillierCiphertext& ct) {
  const auto& priv = key.priv;
  if (!priv.HasCrt()) return PaillierDecryptNoCrt(key, ct);
  const auto& pub = key.pub;
  if (PREVER_MUTATION(PAILLIER_DECRYPT_RANGE_SKIP,
                      ct.c.IsNegative() || ct.c >= pub.n2 || ct.c.IsZero(),
                      ct.c.IsNegative())) {
    return Status::InvalidArgument("ciphertext out of range");
  }
  // Per prime factor: c^(p-1) mod p^2 kills the r^n component (its order
  // divides p-1 ... more precisely r^(n(p-1)) = 1 mod p^2), leaving
  // 1 + m*(p-1)*n, whose L_p is m*(p-1)*q mod p; multiply by hp to get
  // m mod p. Half-width moduli and exponents make each half ~8x cheaper
  // than the full c^lambda mod n^2.
  BigInt mp = LFunction(ct.c.Mod(priv.p2).PowMod(priv.p - BigInt(1), priv.p2),
                        priv.p)
                  .MulMod(priv.hp, priv.p);
  BigInt mq = LFunction(ct.c.Mod(priv.q2).PowMod(priv.q - BigInt(1), priv.q2),
                        priv.q)
                  .MulMod(priv.hq, priv.q);
  // Garner: m = mq + q * ((mp - mq) * q^{-1} mod p), in [0, n).
  BigInt h = mp.SubMod(mq.Mod(priv.p), priv.p).MulMod(priv.q_inv_p, priv.p);
  return mq + priv.q * h;
}

Result<int64_t> PaillierDecryptSigned(const PaillierKeyPair& key,
                                      const PaillierCiphertext& ct) {
  PREVER_ASSIGN_OR_RETURN(BigInt m, PaillierDecrypt(key, ct));
  BigInt half = key.pub.n >> 1;
  if (m > half) m = m - key.pub.n;
  return m.ToInt64();
}

PaillierCiphertext PaillierAdd(const PaillierPublicKey& pub,
                               const PaillierCiphertext& a,
                               const PaillierCiphertext& b) {
  return PaillierCiphertext{a.c.MulMod(b.c, pub.n2)};
}

PaillierCiphertext PaillierAddPlain(const PaillierPublicKey& pub,
                                    const PaillierCiphertext& a,
                                    const BigInt& k) {
  BigInt kk = k.Mod(pub.n);
  BigInt gk = (BigInt(1) + kk * pub.n).Mod(pub.n2);
  return PaillierCiphertext{a.c.MulMod(gk, pub.n2)};
}

PaillierCiphertext PaillierMulPlain(const PaillierPublicKey& pub,
                                    const PaillierCiphertext& a,
                                    const BigInt& k) {
  return PaillierCiphertext{a.c.PowMod(k.Mod(pub.n), pub.n2)};
}

Result<PaillierCiphertext> PaillierRerandomize(const PaillierPublicKey& pub,
                                               const PaillierCiphertext& a,
                                               Drbg& drbg) {
  PREVER_ASSIGN_OR_RETURN(PaillierCiphertext zero,
                          PaillierEncrypt(pub, BigInt(0), drbg));
  return PaillierAdd(pub, a, zero);
}

}  // namespace prever::crypto
