#include "crypto/pedersen.h"

#include <map>
#include <mutex>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace prever::crypto {

namespace {

/// Derives the second generator by hash-expanding a domain string into Z_p
/// and squaring (squares generate the order-q subgroup of a safe-prime
/// group). Nobody knows log_g of the result.
BigInt DeriveH(const BigInt& p, std::string_view domain) {
  Bytes seed = Sha256::Hash(domain);
  size_t bytes = (p.BitLength() + 7) / 8 + 8;
  Bytes expanded = HkdfExpand(seed, ToBytes("prever-pedersen-h"), bytes);
  BigInt x = BigInt::FromBytes(expanded).Mod(p);
  BigInt h = x.MulMod(x, p);
  // Degenerate cases (h == 0 or 1) are astronomically unlikely but cheap to
  // guard: re-derive from the squared value.
  while (h.IsZero() || h == BigInt(1)) {
    x = x + BigInt(1);
    h = x.MulMod(x, p);
  }
  return h;
}

PedersenParams MakeParams(const char* p_hex) {
  PedersenParams params;
  params.p = BigInt::FromHex(p_hex).value();
  params.q = (params.p - BigInt(1)) >> 1;
  // 4 = 2^2 is a quadratic residue, hence generates the order-q subgroup.
  params.g = BigInt(4);
  params.h = DeriveH(params.p, "prever-pedersen-generator-h-v1");
  return params;
}

// RFC 3526, MODP group 5 (1536 bits): a well-known safe prime.
constexpr const char* kModp1536Hex =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF";

// Deterministically pre-generated safe primes (see DESIGN.md §6: research
// parameter sizes). 512-bit for benches, 256-bit for unit tests.
constexpr const char* kBench512Hex =
    "b0848d23a3f32e0978bd94cff6607305b9cc8a795f7f380001f0e8893e80e915"
    "9114af7eb62656cc1fdb943e7aaac5a8e1cfae7d0f7e7edf0ae0b652d3a1d637";
constexpr const char* kTest256Hex =
    "b7e9f735f74bf461eb409d67747a627534f17ded4ba95a60790f978549c8c24f";

}  // namespace

const PedersenParams& PedersenParams::Standard1536() {
  static const PedersenParams& params = *new PedersenParams(MakeParams(kModp1536Hex));
  return params;
}

const PedersenParams& PedersenParams::Bench512() {
  static const PedersenParams& params = *new PedersenParams(MakeParams(kBench512Hex));
  return params;
}

const PedersenParams& PedersenParams::Test256() {
  static const PedersenParams& params = *new PedersenParams(MakeParams(kTest256Hex));
  return params;
}

BigInt PedersenAccel::PowGH(const BigInt& a, const BigInt& b) const {
  MontgomeryContext::Limbs ga = g.PowMont(a);
  ctx->MulMontLimbs(ga, h.PowMont(b), &ga);
  return ctx->UnpackMont(ga);
}

const PedersenAccel& GetPedersenAccel(const PedersenParams& params) {
  static std::mutex mu;
  static auto* cache = new std::map<Bytes, std::unique_ptr<PedersenAccel>>();
  // Key on (p, g, h): p alone does not pin the generators in principle.
  Bytes key = params.p.ToBytes();
  Append(key, params.g.ToBytes());
  Append(key, params.h.ToBytes());
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(key);
  if (it == cache->end()) {
    auto ctx = MontgomeryContext::Shared(params.p).value();
    size_t exp_bits = params.q.BitLength();
    auto accel = std::unique_ptr<PedersenAccel>(
        new PedersenAccel{ctx, FixedBaseTable(ctx, params.g, exp_bits),
                          FixedBaseTable(ctx, params.h, exp_bits),
                          params.g.InvMod(params.p).value()});
    it = cache->emplace(std::move(key), std::move(accel)).first;
  }
  return *it->second;
}

PedersenCommitment PedersenCommit(const PedersenParams& params,
                                  const BigInt& m, const BigInt& r) {
  const PedersenAccel& accel = GetPedersenAccel(params);
  return PedersenCommitment{
      accel.PowGH(m.Mod(params.q), r.Mod(params.q))};
}

PedersenOpening PedersenCommitFresh(const PedersenParams& params,
                                    const BigInt& m, Drbg& drbg) {
  PedersenOpening out;
  out.randomness = drbg.RandomBelow(params.q);
  out.commitment = PedersenCommit(params, m, out.randomness);
  return out;
}

bool PedersenVerify(const PedersenParams& params,
                    const PedersenCommitment& commitment, const BigInt& m,
                    const BigInt& r) {
  return PedersenCommit(params, m, r) == commitment;
}

PedersenCommitment PedersenAdd(const PedersenParams& params,
                               const PedersenCommitment& a,
                               const PedersenCommitment& b) {
  return PedersenCommitment{a.c.MulMod(b.c, params.p)};
}

PedersenCommitment PedersenScale(const PedersenParams& params,
                                 const PedersenCommitment& a,
                                 const BigInt& k) {
  return PedersenCommitment{a.c.PowMod(k.Mod(params.q), params.p)};
}

}  // namespace prever::crypto
