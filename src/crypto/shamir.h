#ifndef PREVER_CRYPTO_SHAMIR_H_
#define PREVER_CRYPTO_SHAMIR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace prever::crypto {

/// Prime field F_p with p = 2^61 - 1 (a Mersenne prime). Large enough for
/// all PReVer aggregates (counts, hours, currency in cents) while keeping
/// every field op a couple of machine instructions.
class Field61 {
 public:
  static constexpr uint64_t kPrime = (1ULL << 61) - 1;

  static uint64_t Reduce(uint64_t x);
  static uint64_t Add(uint64_t a, uint64_t b);
  static uint64_t Sub(uint64_t a, uint64_t b);
  static uint64_t Mul(uint64_t a, uint64_t b);
  static uint64_t Pow(uint64_t base, uint64_t exp);
  /// Multiplicative inverse via Fermat; requires a != 0.
  static uint64_t Inv(uint64_t a);
  /// Uniform field element.
  static uint64_t Random(Rng& rng);
};

/// One party's Shamir share: the evaluation point x (party id, nonzero) and
/// polynomial value y.
struct ShamirShare {
  uint64_t x = 0;
  uint64_t y = 0;
};

/// Splits `secret` (in F_p) into n shares with reconstruction threshold t
/// (any t shares reconstruct; t-1 reveal nothing).
Result<std::vector<ShamirShare>> ShamirShareSecret(uint64_t secret, size_t n,
                                                   size_t t, Rng& rng);

/// Lagrange interpolation at x = 0 from >= t distinct shares.
Result<uint64_t> ShamirReconstruct(const std::vector<ShamirShare>& shares);

/// Pointwise share addition — yields shares of the sum (degrees equal,
/// points must match pairwise).
Result<std::vector<ShamirShare>> ShamirAddShares(
    const std::vector<ShamirShare>& a, const std::vector<ShamirShare>& b);

/// Multiplies every share by a public constant — shares of c * secret.
std::vector<ShamirShare> ShamirScaleShares(const std::vector<ShamirShare>& a,
                                           uint64_t c);

// --- Additive sharing over Z_{2^64} (used by the lightweight aggregation
// paths where all parties participate, i.e. t == n) ---

/// Splits `secret` into n additive shares (sum mod 2^64 == secret).
std::vector<uint64_t> AdditiveShare(uint64_t secret, size_t n, Rng& rng);

/// Sums shares mod 2^64.
uint64_t AdditiveReconstruct(const std::vector<uint64_t>& shares);

}  // namespace prever::crypto

#endif  // PREVER_CRYPTO_SHAMIR_H_
