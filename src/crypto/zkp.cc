#include "crypto/zkp.h"

#include <algorithm>

#include "crypto/sha256.h"
#include "mutate/mutation.h"

namespace prever::crypto {

namespace {

/// Fiat–Shamir challenge: hash a domain tag and the transcript values into
/// Z_q. Every proof type uses a distinct tag to prevent cross-protocol reuse.
BigInt Challenge(const PedersenParams& params, std::string_view tag,
                 const std::vector<const BigInt*>& transcript) {
  Sha256 hash;
  hash.Update(ToBytes(tag));
  hash.Update(params.p.ToBytes());
  hash.Update(params.g.ToBytes());
  hash.Update(params.h.ToBytes());
  for (const BigInt* v : transcript) {
    Bytes b = v->ToBytes();
    // Length-prefix to keep the transcript encoding injective.
    Bytes len(4);
    for (int i = 0; i < 4; ++i) len[i] = static_cast<uint8_t>(b.size() >> (8 * i));
    hash.Update(len);
    hash.Update(b);
  }
  return BigInt::FromBytes(hash.Finish()).Mod(params.q);
}

}  // namespace

OpeningProof ProveOpening(const PedersenParams& params,
                          const PedersenCommitment& commitment,
                          const BigInt& m, const BigInt& r, Drbg& drbg) {
  BigInt a = drbg.RandomBelow(params.q);
  BigInt b = drbg.RandomBelow(params.q);
  OpeningProof proof;
  proof.t = GetPedersenAccel(params).PowGH(a, b);
  BigInt e = Challenge(params, "prever-zkp-opening", {&commitment.c, &proof.t});
  proof.z1 = (a + e * m.Mod(params.q)).Mod(params.q);
  proof.z2 = (b + e * r.Mod(params.q)).Mod(params.q);
  return proof;
}

bool VerifyOpening(const PedersenParams& params,
                   const PedersenCommitment& commitment,
                   const OpeningProof& proof) {
  BigInt e = Challenge(params, "prever-zkp-opening", {&commitment.c, &proof.t});
  BigInt lhs = GetPedersenAccel(params).PowGH(proof.z1, proof.z2);
  BigInt rhs = proof.t.MulMod(commitment.c.PowMod(e, params.p), params.p);
  return PREVER_MUTATION(ZKP_OPENING_ACCEPT, lhs == rhs, true);
}

Result<BitProof> ProveBit(const PedersenParams& params,
                          const PedersenCommitment& commitment, int bit,
                          const BigInt& r, Drbg& drbg) {
  if (bit != 0 && bit != 1) {
    return Status::InvalidArgument("bit must be 0 or 1");
  }
  // Statements (Schnorr w.r.t. base h):
  //   branch 0: y0 = C       = h^r   (i.e., committed value is 0)
  //   branch 1: y1 = C * g^-1 = h^r  (i.e., committed value is 1)
  const PedersenAccel& accel = GetPedersenAccel(params);
  BigInt y0 = commitment.c;
  BigInt y1 = commitment.c.MulMod(accel.g_inv, params.p);

  // The simulated branch needs y^{-e}; y0/y1 live in the order-q subgroup
  // (products of g/h powers), so y^{-e} = y^{q-e} — one exponentiation
  // instead of an extended-gcd inverse plus one.
  auto pow_neg = [&](const BigInt& y, const BigInt& e) {
    return y.PowMod(e.IsZero() ? BigInt(0) : params.q - e, params.p);
  };

  BitProof proof;
  BigInt w = drbg.RandomBelow(params.q);
  if (bit == 0) {
    // Real proof on branch 0; simulate branch 1.
    proof.t0 = accel.h.PowMod(w);
    proof.e1 = drbg.RandomBelow(params.q);
    proof.z1 = drbg.RandomBelow(params.q);
    proof.t1 = accel.h.PowMod(proof.z1)
                   .MulMod(pow_neg(y1, proof.e1), params.p);
    BigInt e = Challenge(params, "prever-zkp-bit",
                         {&commitment.c, &proof.t0, &proof.t1});
    proof.e0 = e.SubMod(proof.e1, params.q);
    proof.z0 = (w + proof.e0 * r.Mod(params.q)).Mod(params.q);
  } else {
    // Real proof on branch 1; simulate branch 0.
    proof.t1 = accel.h.PowMod(w);
    proof.e0 = drbg.RandomBelow(params.q);
    proof.z0 = drbg.RandomBelow(params.q);
    proof.t0 = accel.h.PowMod(proof.z0)
                   .MulMod(pow_neg(y0, proof.e0), params.p);
    BigInt e = Challenge(params, "prever-zkp-bit",
                         {&commitment.c, &proof.t0, &proof.t1});
    proof.e1 = e.SubMod(proof.e0, params.q);
    proof.z1 = (w + proof.e1 * r.Mod(params.q)).Mod(params.q);
  }
  return proof;
}

bool VerifyBit(const PedersenParams& params,
               const PedersenCommitment& commitment, const BitProof& proof) {
  BigInt e = Challenge(params, "prever-zkp-bit",
                       {&commitment.c, &proof.t0, &proof.t1});
  if (PREVER_MUTATION(ZKP_BIT_SPLIT_SKIP,
                      proof.e0.AddMod(proof.e1, params.q) != e, false)) {
    return false;
  }
  const PedersenAccel& accel = GetPedersenAccel(params);
  BigInt y0 = commitment.c;
  BigInt y1 = commitment.c.MulMod(accel.g_inv, params.p);
  // h^z0 == t0 * y0^e0
  BigInt lhs0 = accel.h.PowMod(proof.z0);
  BigInt rhs0 = proof.t0.MulMod(y0.PowMod(proof.e0, params.p), params.p);
  if (PREVER_MUTATION(ZKP_BIT_BRANCH0_SKIP, lhs0 != rhs0, false)) return false;
  // h^z1 == t1 * y1^e1
  BigInt lhs1 = accel.h.PowMod(proof.z1);
  BigInt rhs1 = proof.t1.MulMod(y1.PowMod(proof.e1, params.p), params.p);
  return PREVER_MUTATION(ZKP_BIT_BRANCH1_SKIP, lhs1 == rhs1, true);
}

Result<RangeProof> ProveRange(const PedersenParams& params,
                              const PedersenCommitment& commitment,
                              const BigInt& m, const BigInt& r,
                              size_t num_bits, Drbg& drbg) {
  if (m.IsNegative() || m.BitLength() > num_bits) {
    return Status::InvalidArgument("value out of range for range proof");
  }
  if (!PedersenVerify(params, commitment, m, r)) {
    return Status::InvalidArgument("commitment does not open to (m, r)");
  }
  RangeProof proof;
  proof.bit_commitments.reserve(num_bits);
  proof.bit_proofs.reserve(num_bits);

  // Choose bit randomness r_i for i > 0 freely; pin r_0 so that
  // sum(2^i * r_i) == r (mod q), making the weighted product of the bit
  // commitments equal the original commitment.
  std::vector<BigInt> bit_rand(num_bits);
  BigInt weighted_tail(0);
  for (size_t i = 1; i < num_bits; ++i) {
    bit_rand[i] = drbg.RandomBelow(params.q);
    weighted_tail =
        weighted_tail.AddMod((BigInt(1) << i).MulMod(bit_rand[i], params.q),
                             params.q);
  }
  bit_rand[0] = r.Mod(params.q).SubMod(weighted_tail, params.q);

  for (size_t i = 0; i < num_bits; ++i) {
    int bit = m.Bit(i) ? 1 : 0;
    PedersenCommitment ci = PedersenCommit(params, BigInt(bit), bit_rand[i]);
    PREVER_ASSIGN_OR_RETURN(BitProof bp,
                            ProveBit(params, ci, bit, bit_rand[i], drbg));
    proof.bit_commitments.push_back(ci);
    proof.bit_proofs.push_back(std::move(bp));
  }
  return proof;
}

bool VerifyRange(const PedersenParams& params,
                 const PedersenCommitment& commitment, const RangeProof& proof,
                 size_t num_bits) {
  if (PREVER_MUTATION(ZKP_RANGE_WIDTH_SKIP,
                      proof.bit_commitments.size() != num_bits ||
                          proof.bit_proofs.size() != num_bits,
                      false)) {
    return false;
  }
  // Each bit commitment must open to 0/1.
  for (size_t i = 0; i < std::min(proof.bit_commitments.size(),
                                  proof.bit_proofs.size()); ++i) {
    if (PREVER_MUTATION(
            ZKP_RANGE_BIT_SKIP,
            !VerifyBit(params, proof.bit_commitments[i], proof.bit_proofs[i]),
            false)) {
      return false;
    }
  }
  // Weighted product must reconstruct the original commitment:
  // prod c_i^(2^i) evaluated Horner-style from the top bit down
  // (acc = acc^2 * c_i), which is 2*num_bits MontMuls instead of num_bits
  // full exponentiations.
  auto ctx = MontgomeryContext::Shared(params.p);
  if (!ctx.ok()) return false;
  MontgomeryContext::Limbs acc = (*ctx)->OneMont();
  // Iterate the transcript's own width: identical to num_bits after the size
  // check, and keeps the width-check mutant in bounds.
  for (size_t i = proof.bit_commitments.size(); i-- > 0;) {
    (*ctx)->MulMontLimbs(acc, acc, &acc);
    (*ctx)->MulMontLimbs(
        acc, (*ctx)->PackMont(proof.bit_commitments[i].c.Mod(params.p)),
        &acc);
  }
  return PREVER_MUTATION(ZKP_RANGE_PRODUCT_ACCEPT,
                         (*ctx)->UnpackMont(acc) == commitment.c, true);
}

Result<RangeProof> ProveUpperBound(const PedersenParams& params,
                                   const PedersenCommitment& /*commitment*/,
                                   const BigInt& m, const BigInt& r,
                                   const BigInt& bound, size_t num_bits,
                                   Drbg& drbg) {
  if (m > bound) {
    return Status::InvalidArgument("value exceeds bound; cannot prove");
  }
  // slack = bound - m >= 0. Its commitment is Commit(bound, 0) / C, which the
  // verifier can derive; the slack randomness is -r mod q.
  BigInt slack = bound - m;
  BigInt slack_r = params.q - r.Mod(params.q);
  if (slack_r == params.q) slack_r = BigInt(0);
  PedersenCommitment slack_commitment =
      PedersenCommit(params, slack, slack_r);
  return ProveRange(params, slack_commitment, slack, slack_r, num_bits, drbg);
}

bool VerifyUpperBound(const PedersenParams& params,
                      const PedersenCommitment& commitment,
                      const RangeProof& proof, const BigInt& bound,
                      size_t num_bits) {
  // Derive Commit(bound - m, -r) = g^bound * C^{-1}.
  auto c_inv = commitment.c.InvMod(params.p);
  if (!c_inv.ok()) return false;
  PedersenCommitment slack_commitment{
      GetPedersenAccel(params).g.PowMod(bound.Mod(params.q))
          .MulMod(c_inv.value(), params.p)};
  return PREVER_MUTATION(ZKP_UPPER_SLACK_ACCEPT,
                         VerifyRange(params, slack_commitment, proof, num_bits),
                         true);
}

Result<RangeProof> ProveLowerBound(const PedersenParams& params,
                                   const PedersenCommitment& /*commitment*/,
                                   const BigInt& m, const BigInt& r,
                                   const BigInt& bound, size_t num_bits,
                                   Drbg& drbg) {
  if (m < bound) {
    return Status::InvalidArgument("value below bound; cannot prove");
  }
  // slack = m - bound >= 0; commitment is C / Commit(bound, 0), randomness r.
  BigInt slack = m - bound;
  PedersenCommitment slack_commitment = PedersenCommit(params, slack, r);
  return ProveRange(params, slack_commitment, slack, r, num_bits, drbg);
}

bool VerifyLowerBound(const PedersenParams& params,
                      const PedersenCommitment& commitment,
                      const RangeProof& proof, const BigInt& bound,
                      size_t num_bits) {
  // Derive Commit(m - bound, r) = C * g^{-bound}.
  auto g_pow_bound_inv =
      GetPedersenAccel(params).g.PowMod(bound.Mod(params.q)).InvMod(params.p);
  if (!g_pow_bound_inv.ok()) return false;
  PedersenCommitment slack_commitment{
      commitment.c.MulMod(g_pow_bound_inv.value(), params.p)};
  return PREVER_MUTATION(ZKP_LOWER_SLACK_ACCEPT,
                         VerifyRange(params, slack_commitment, proof, num_bits),
                         true);
}

}  // namespace prever::crypto
