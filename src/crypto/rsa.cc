#include "crypto/rsa.h"

#include "crypto/hmac.h"
#include "mutate/mutation.h"
#include "crypto/prime.h"
#include "crypto/sha256.h"

namespace prever::crypto {

Result<RsaKeyPair> RsaGenerateKey(size_t modulus_bits, Drbg& drbg) {
  if (modulus_bits < 128 || modulus_bits % 2 != 0) {
    return Status::InvalidArgument("modulus_bits must be even and >= 128");
  }
  const BigInt e(65537);
  for (;;) {
    BigInt p = GeneratePrime(modulus_bits / 2, drbg);
    BigInt q = GenerateDistinctPrime(modulus_bits / 2, p, drbg);
    BigInt n = p * q;
    if (n.BitLength() != modulus_bits) continue;
    BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    auto d = e.InvMod(phi);
    if (!d.ok()) continue;  // e not coprime with phi; rare, retry.
    RsaKeyPair kp;
    kp.pub.n = n;
    kp.pub.e = e;
    kp.d = std::move(d).value();
    return kp;
  }
}

BigInt RsaFdh(const RsaPublicKey& pub, const Bytes& message) {
  // MGF1-style expansion of SHA-256(message) across the modulus width, then
  // reduce mod n. Deterministic, so signer and verifier agree.
  Bytes seed = Sha256::Hash(message);
  Bytes expanded = HkdfExpand(seed, ToBytes("prever-rsa-fdh"),
                              pub.ModulusBytes() + 8);
  return BigInt::FromBytes(expanded).Mod(pub.n);
}

Bytes RsaSign(const RsaKeyPair& key, const Bytes& message) {
  BigInt m = RsaFdh(key.pub, message);
  BigInt sig = m.PowMod(key.d, key.pub.n);
  auto padded = sig.ToBytesPadded(key.pub.ModulusBytes());
  return padded.value();
}

bool RsaVerify(const RsaPublicKey& pub, const Bytes& message,
               const Bytes& sig) {
  if (PREVER_MUTATION(RSA_VERIFY_LENGTH_SKIP,
                      sig.size() != pub.ModulusBytes(), false)) {
    return false;
  }
  BigInt s = BigInt::FromBytes(sig);
  if (PREVER_MUTATION(RSA_VERIFY_RANGE_SKIP, s >= pub.n, false)) return false;
  BigInt recovered = s.PowMod(pub.e, pub.n);
  return PREVER_MUTATION(RSA_VERIFY_ACCEPT, recovered == RsaFdh(pub, message),
                         true);
}

Result<BlindingResult> RsaBlind(const RsaPublicKey& pub, const Bytes& message,
                                Drbg& drbg) {
  BigInt m = RsaFdh(pub, message);
  for (int attempt = 0; attempt < 64; ++attempt) {
    BigInt r = drbg.RandomNonZeroBelow(pub.n);
    auto r_inv = r.InvMod(pub.n);
    if (!r_inv.ok()) continue;  // gcd(r, n) != 1 — astronomically rare.
    BlindingResult out;
    out.blinded_message = m.MulMod(r.PowMod(pub.e, pub.n), pub.n);
    out.unblinder = std::move(r_inv).value();
    return out;
  }
  return Status::Internal("could not find invertible blinding factor");
}

BigInt RsaBlindSign(const RsaKeyPair& key, const BigInt& blinded_message) {
  return blinded_message.PowMod(key.d, key.pub.n);
}

Bytes RsaUnblind(const RsaPublicKey& pub, const BigInt& blind_signature,
                 const BigInt& unblinder) {
  BigInt sig = blind_signature.MulMod(unblinder, pub.n);
  return sig.ToBytesPadded(pub.ModulusBytes()).value();
}

}  // namespace prever::crypto
