#ifndef PREVER_CRYPTO_MERKLE_H_
#define PREVER_CRYPTO_MERKLE_H_

#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace prever::crypto {

/// Append-only Merkle tree in the RFC 6962 (Certificate Transparency) style:
/// leaf hash = SHA-256(0x00 || leaf), node hash = SHA-256(0x01 || l || r).
/// Backs the centralized ledger database (RC4): inclusion proofs show an
/// entry is in the ledger; consistency proofs show one ledger state is an
/// append-only extension of an earlier one.
class MerkleTree {
 public:
  MerkleTree() = default;

  /// Appends a leaf (raw entry bytes, hashed internally). Returns its index.
  size_t Append(const Bytes& leaf);

  /// Appends many leaves at once: hashes every leaf first, then folds each
  /// cache level a single time instead of walking the carry chain per leaf.
  /// Result is identical to appending the leaves one by one.
  void AppendBatch(const std::vector<Bytes>& batch);

  size_t LeafCount() const { return leaves_.size(); }

  /// Root hash over the current leaves. Empty tree hashes to SHA-256("").
  Bytes Root() const;

  /// Root over the first `n` leaves (historic digest). Requires n <= size.
  Result<Bytes> RootAt(size_t n) const;

  /// Audit path proving leaf `index` is included under RootAt(tree_size).
  Result<std::vector<Bytes>> InclusionProof(size_t index,
                                            size_t tree_size) const;

  /// Proof that the tree of size `old_size` is a prefix of size `new_size`.
  Result<std::vector<Bytes>> ConsistencyProof(size_t old_size,
                                              size_t new_size) const;

  /// Stateless verification of an inclusion proof.
  static bool VerifyInclusion(const Bytes& leaf, size_t index,
                              size_t tree_size, const std::vector<Bytes>& proof,
                              const Bytes& root);

  /// Stateless verification of a consistency proof.
  static bool VerifyConsistency(size_t old_size, size_t new_size,
                                const Bytes& old_root, const Bytes& new_root,
                                const std::vector<Bytes>& proof);

  /// Exposed hashing helpers (shared with the ledger's digest chain).
  static Bytes HashLeaf(const Bytes& leaf);
  static Bytes HashNode(const Bytes& left, const Bytes& right);
  static Bytes EmptyRoot();

 private:
  /// Root over leaf hash range [begin, end). `begin` is always aligned to
  /// the largest power of two <= the range length (invariant of the RFC
  /// 6962 recursion), which lets complete subtrees come from the level
  /// cache in O(1).
  Bytes SubtreeRoot(size_t begin, size_t end) const;
  void SubtreeInclusion(size_t index, size_t begin, size_t end,
                        std::vector<Bytes>* proof) const;
  void SubtreeConsistency(size_t old_size, size_t begin, size_t end,
                          bool whole_known, std::vector<Bytes>* proof) const;

  std::vector<Bytes> leaves_;  // Leaf hashes (level 0 view).
  /// levels_[h][i] = hash of the complete subtree covering leaves
  /// [i*2^h, (i+1)*2^h); maintained incrementally on Append so digests and
  /// proofs cost O(log n) instead of rehashing the journal.
  std::vector<std::vector<Bytes>> levels_;
};

}  // namespace prever::crypto

#endif  // PREVER_CRYPTO_MERKLE_H_
