#include "crypto/drbg.h"

#include "crypto/hmac.h"

namespace prever::crypto {

Drbg::Drbg(const Bytes& seed) : key_(32, 0x00), v_(32, 0x01) {
  Update(seed);
}

Drbg::Drbg(uint64_t seed) : key_(32, 0x00), v_(32, 0x01) {
  Bytes s(8);
  for (int i = 0; i < 8; ++i) s[i] = static_cast<uint8_t>(seed >> (8 * i));
  Update(s);
}

void Drbg::Update(const Bytes& provided) {
  Bytes data = v_;
  data.push_back(0x00);
  Append(data, provided);
  key_ = HmacSha256(key_, data);
  v_ = HmacSha256(key_, v_);
  if (!provided.empty()) {
    data = v_;
    data.push_back(0x01);
    Append(data, provided);
    key_ = HmacSha256(key_, data);
    v_ = HmacSha256(key_, v_);
  }
}

Bytes Drbg::Generate(size_t n) {
  Bytes out;
  while (out.size() < n) {
    v_ = HmacSha256(key_, v_);
    Append(out, v_);
  }
  out.resize(n);
  Update({});
  return out;
}

void Drbg::Reseed(const Bytes& entropy) { Update(entropy); }

Drbg Drbg::Fork() { return Drbg(Generate(32)); }

BigInt Drbg::RandomBits(size_t bits) {
  if (bits == 0) return BigInt();
  size_t bytes = (bits + 7) / 8;
  Bytes raw = Generate(bytes);
  // Clear excess leading bits, then force the top bit so BitLength() == bits.
  size_t excess = bytes * 8 - bits;
  raw[0] &= static_cast<uint8_t>(0xff >> excess);
  raw[0] |= static_cast<uint8_t>(0x80 >> excess);
  return BigInt::FromBytes(raw);
}

BigInt Drbg::RandomBelow(const BigInt& bound) {
  size_t bits = bound.BitLength();
  size_t bytes = (bits + 7) / 8;
  size_t excess = bytes * 8 - bits;
  for (;;) {
    Bytes raw = Generate(bytes);
    raw[0] &= static_cast<uint8_t>(0xff >> excess);
    BigInt candidate = BigInt::FromBytes(raw);
    if (candidate < bound) return candidate;
  }
}

BigInt Drbg::RandomNonZeroBelow(const BigInt& bound) {
  for (;;) {
    BigInt candidate = RandomBelow(bound);
    if (!candidate.IsZero()) return candidate;
  }
}

uint64_t Drbg::RandomU64() {
  Bytes raw = Generate(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(raw[i]) << (8 * i);
  return v;
}

}  // namespace prever::crypto
