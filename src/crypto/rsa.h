#ifndef PREVER_CRYPTO_RSA_H_
#define PREVER_CRYPTO_RSA_H_

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/bigint.h"
#include "crypto/drbg.h"

namespace prever::crypto {

/// RSA public key (n, e).
struct RsaPublicKey {
  BigInt n;
  BigInt e;

  size_t ModulusBytes() const { return (n.BitLength() + 7) / 8; }
};

/// RSA key pair. Private exponent kept alongside CRT-free d for simplicity.
struct RsaKeyPair {
  RsaPublicKey pub;
  BigInt d;
};

/// Generates an RSA key pair with a modulus of `modulus_bits` bits and
/// public exponent 65537. Research-scale sizes (512–2048) are supported.
Result<RsaKeyPair> RsaGenerateKey(size_t modulus_bits, Drbg& drbg);

/// Full-domain-hash style signature: sig = H*(m)^d mod n where H* expands
/// SHA-256 over the modulus width (deterministic MGF1-like expansion).
Bytes RsaSign(const RsaKeyPair& key, const Bytes& message);

/// Verifies sig^e == H*(m) mod n.
bool RsaVerify(const RsaPublicKey& pub, const Bytes& message, const Bytes& sig);

/// Hashes a message into Z_n for FDH signing (shared by blind signatures).
BigInt RsaFdh(const RsaPublicKey& pub, const Bytes& message);

// --- Chaum blind signatures (token privacy in the Separ instantiation) ---
//
// The requester blinds H*(m) with a random factor r: blinded = H*(m) * r^e.
// The authority signs the blinded value without learning m; the requester
// unblinds by multiplying with r^{-1}. The resulting signature verifies like
// a normal FDH signature but the authority cannot link it to the issuance.

struct BlindingResult {
  BigInt blinded_message;  ///< Send this to the signer.
  BigInt unblinder;        ///< Keep secret; r^{-1} mod n.
};

/// Blinds `message` for the holder of `pub`.
Result<BlindingResult> RsaBlind(const RsaPublicKey& pub, const Bytes& message,
                                Drbg& drbg);

/// Signer side: raw signature on the blinded value.
BigInt RsaBlindSign(const RsaKeyPair& key, const BigInt& blinded_message);

/// Requester side: removes the blinding factor, yielding a standard
/// signature on `message` (verify with RsaVerify).
Bytes RsaUnblind(const RsaPublicKey& pub, const BigInt& blind_signature,
                 const BigInt& unblinder);

}  // namespace prever::crypto

#endif  // PREVER_CRYPTO_RSA_H_
