#ifndef PREVER_CRYPTO_HMAC_H_
#define PREVER_CRYPTO_HMAC_H_

#include "common/bytes.h"

namespace prever::crypto {

/// HMAC-SHA256 (RFC 2104).
Bytes HmacSha256(const Bytes& key, const Bytes& message);

/// HKDF-SHA256 expand-only step (RFC 5869) producing `length` bytes from a
/// pseudorandom key and context string.
Bytes HkdfExpand(const Bytes& prk, const Bytes& info, size_t length);

/// Full HKDF: extract-then-expand.
Bytes Hkdf(const Bytes& salt, const Bytes& ikm, const Bytes& info,
           size_t length);

}  // namespace prever::crypto

#endif  // PREVER_CRYPTO_HMAC_H_
