#ifndef PREVER_CRYPTO_ELGAMAL_H_
#define PREVER_CRYPTO_ELGAMAL_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "crypto/bigint.h"
#include "crypto/drbg.h"
#include "crypto/pedersen.h"

namespace prever::crypto {

/// Exponential ElGamal over a Schnorr group (reuses PedersenParams):
/// Enc(m) = (g^r, g^m * y^r). Additively homomorphic — ciphertext products
/// encrypt plaintext sums — and, unlike Paillier, supports THRESHOLD
/// decryption with a distributed key, which removes PReVer's dependence on
/// any single trusted key holder in the federated setting (§5 names Separ's
/// "centralized trusted third party" as a serious shortcoming).
///
/// Decryption recovers g^m and then takes a discrete log, so plaintexts
/// must be small (bounded aggregates: hours, counts, cents) — exactly
/// PReVer's regulation domain. `max_plaintext` bounds the recovery scan.
struct ElGamalCiphertext {
  BigInt a;  ///< g^r.
  BigInt b;  ///< g^m * y^r.

  bool operator==(const ElGamalCiphertext& o) const {
    return a == o.a && b == o.b;
  }
};

/// Single-key ElGamal (baseline; the threshold variant is below).
class ElGamal {
 public:
  ElGamal(const PedersenParams& params, Drbg& drbg);

  const BigInt& public_key() const { return y_; }
  const PedersenParams& params() const { return *params_; }

  Result<ElGamalCiphertext> Encrypt(int64_t m, Drbg& drbg) const;
  /// Requires 0 <= m <= max_plaintext; linear-scan dlog recovery.
  Result<int64_t> Decrypt(const ElGamalCiphertext& ct,
                          int64_t max_plaintext) const;

  static ElGamalCiphertext Add(const PedersenParams& params,
                               const ElGamalCiphertext& x,
                               const ElGamalCiphertext& y);

 private:
  const PedersenParams* params_;
  BigInt x_;  ///< Secret key.
  BigInt y_;  ///< Public key g^x.
  /// Fixed-base table for y: y^r dominates every Encrypt.
  std::unique_ptr<FixedBaseTable> y_table_;
};

/// n-of-n threshold ElGamal: the secret key is additively shared across
/// parties at setup (a one-time distributed key generation — each party
/// contributes g^{x_i}; y = prod g^{x_i}); decryption requires a partial
/// decryption share a^{x_i} from EVERY party, so no single party (and no
/// authority) can decrypt alone.
class ThresholdElGamal {
 public:
  /// Simulates DKG among `num_parties` parties.
  ThresholdElGamal(const PedersenParams& params, size_t num_parties,
                   Drbg& drbg);

  size_t num_parties() const { return shares_.size(); }
  const BigInt& public_key() const { return y_; }
  const PedersenParams& params() const { return *params_; }

  /// Anyone can encrypt under the joint key.
  Result<ElGamalCiphertext> Encrypt(int64_t m, Drbg& drbg) const;

  /// Party i's partial decryption a^{x_i} (runs on party i's machine with
  /// its own share; nothing else leaves the party).
  Result<BigInt> PartialDecrypt(size_t party, const ElGamalCiphertext& ct) const;

  /// Combines ALL partial decryptions into the plaintext. Fails if any
  /// share is missing or forged (the recovered value won't be in range).
  Result<int64_t> Combine(const ElGamalCiphertext& ct,
                          const std::vector<BigInt>& partials,
                          int64_t max_plaintext) const;

  static ElGamalCiphertext Add(const PedersenParams& params,
                               const ElGamalCiphertext& x,
                               const ElGamalCiphertext& y);

 private:
  const PedersenParams* params_;
  std::vector<BigInt> shares_;  ///< x_i per party (held by party i).
  BigInt y_;                    ///< Joint public key.
  std::unique_ptr<FixedBaseTable> y_table_;
};

/// Shared dlog recovery: finds m in [0, max] with g^m == target, or error.
Result<int64_t> RecoverDiscreteLog(const PedersenParams& params,
                                   const BigInt& target, int64_t max);

}  // namespace prever::crypto

#endif  // PREVER_CRYPTO_ELGAMAL_H_
