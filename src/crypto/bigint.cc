#include "crypto/bigint.h"

#include <algorithm>

#include "crypto/montgomery.h"

namespace prever::crypto {

BigInt::BigInt(int64_t v) {
  negative_ = v < 0;
  // Careful with INT64_MIN: negate in unsigned space.
  uint64_t mag = negative_ ? (~static_cast<uint64_t>(v) + 1) : static_cast<uint64_t>(v);
  while (mag != 0) {
    limbs_.push_back(static_cast<uint32_t>(mag));
    mag >>= 32;
  }
}

BigInt::BigInt(uint64_t v, bool /*unsigned_tag*/) {
  while (v != 0) {
    limbs_.push_back(static_cast<uint32_t>(v));
    v >>= 32;
  }
}

BigInt BigInt::FromLimbs(std::vector<uint32_t> limbs) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.Trim();
  return out;
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

Result<BigInt> BigInt::FromDecimal(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty decimal string");
  bool neg = false;
  size_t i = 0;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
  }
  if (i == s.size()) return Status::InvalidArgument("sign without digits");
  BigInt out;
  const BigInt kTen(10);
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return Status::InvalidArgument("non-decimal character");
    }
    out = out * kTen + BigInt(s[i] - '0');
  }
  out.negative_ = neg && !out.IsZero();
  return out;
}

Result<BigInt> BigInt::FromHex(std::string_view s) {
  if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s.remove_prefix(2);
  }
  if (s.empty()) return Status::InvalidArgument("empty hex string");
  BigInt out;
  for (char c : s) {
    int nib;
    if (c >= '0' && c <= '9') {
      nib = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      nib = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      nib = c - 'A' + 10;
    } else if (c == ' ' || c == '\n' || c == '\t') {
      continue;  // Allow whitespace in embedded constants.
    } else {
      return Status::InvalidArgument("non-hex character");
    }
    out = (out << 4) + BigInt(nib);
  }
  return out;
}

BigInt BigInt::FromBytes(const Bytes& be) {
  BigInt out;
  size_t n = be.size();
  out.limbs_.assign((n + 3) / 4, 0);
  for (size_t i = 0; i < n; ++i) {
    // Byte i from the end goes into limb i/4, shifted by 8*(i%4).
    size_t from_end = n - 1 - i;
    out.limbs_[i / 4] |= static_cast<uint32_t>(be[from_end]) << (8 * (i % 4));
  }
  out.Trim();
  return out;
}

Bytes BigInt::ToBytes() const {
  if (IsZero()) return Bytes{0};
  size_t bytes = (BitLength() + 7) / 8;
  Bytes out(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    uint32_t limb = limbs_[i / 4];
    out[bytes - 1 - i] = static_cast<uint8_t>(limb >> (8 * (i % 4)));
  }
  return out;
}

Result<Bytes> BigInt::ToBytesPadded(size_t n) const {
  Bytes raw = ToBytes();
  if (IsZero()) raw.clear();
  if (raw.size() > n) {
    return Status::InvalidArgument("value does not fit in requested width");
  }
  Bytes out(n, 0);
  std::copy(raw.begin(), raw.end(), out.begin() + static_cast<long>(n - raw.size()));
  return out;
}

std::string BigInt::ToDecimalString() const {
  if (IsZero()) return "0";
  BigInt v = *this;
  v.negative_ = false;
  const BigInt kChunk(1000000000);  // 10^9 per division step.
  std::string out;
  while (!v.IsZero()) {
    BigInt q, r;
    DivModMagnitude(v, kChunk, &q, &r);
    uint64_t part = r.IsZero() ? 0 : r.limbs_[0];
    std::string digits = std::to_string(part);
    if (!q.IsZero()) {
      digits = std::string(9 - digits.size(), '0') + digits;
    }
    out = digits + out;
    v = q;
  }
  if (negative_) out = "-" + out;
  return out;
}

std::string BigInt::ToHexString() const {
  if (IsZero()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(limbs_[i] >> shift) & 0xf]);
    }
  }
  size_t first = out.find_first_not_of('0');
  out = out.substr(first);
  if (negative_) out = "-" + out;
  return out;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::Bit(size_t i) const {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

Result<int64_t> BigInt::ToInt64() const {
  if (limbs_.size() > 2) return Status::InvalidArgument("does not fit in int64");
  uint64_t mag = 0;
  for (size_t i = limbs_.size(); i-- > 0;) mag = (mag << 32) | limbs_[i];
  if (negative_) {
    if (mag > static_cast<uint64_t>(INT64_MAX) + 1) {
      return Status::InvalidArgument("does not fit in int64");
    }
    return static_cast<int64_t>(~mag + 1);
  }
  if (mag > static_cast<uint64_t>(INT64_MAX)) {
    return Status::InvalidArgument("does not fit in int64");
  }
  return static_cast<int64_t>(mag);
}

Result<uint64_t> BigInt::ToUint64() const {
  if (negative_) return Status::InvalidArgument("negative value");
  if (limbs_.size() > 2) return Status::InvalidArgument("does not fit in uint64");
  uint64_t mag = 0;
  for (size_t i = limbs_.size(); i-- > 0;) mag = (mag << 32) | limbs_[i];
  return mag;
}

int BigInt::CompareMagnitude(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMagnitude(*this, other);
  return negative_ ? -mag : mag;
}

BigInt BigInt::AddMagnitude(const BigInt& a, const BigInt& b) {
  BigInt out;
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Trim();
  return out;
}

BigInt BigInt::SubMagnitude(const BigInt& a, const BigInt& b) {
  BigInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow -
                   (i < b.limbs_.size() ? static_cast<int64_t>(b.limbs_[i]) : 0);
    if (diff < 0) {
      diff += (1LL << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  out.Trim();
  return out;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.IsZero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  if (negative_ == rhs.negative_) {
    BigInt out = AddMagnitude(*this, rhs);
    out.negative_ = negative_ && !out.IsZero();
    return out;
  }
  int cmp = CompareMagnitude(*this, rhs);
  if (cmp == 0) return BigInt();
  if (cmp > 0) {
    BigInt out = SubMagnitude(*this, rhs);
    out.negative_ = negative_ && !out.IsZero();
    return out;
  }
  BigInt out = SubMagnitude(rhs, *this);
  out.negative_ = rhs.negative_ && !out.IsZero();
  return out;
}

BigInt BigInt::operator-(const BigInt& rhs) const { return *this + (-rhs); }

namespace {
/// Below this limb count, schoolbook beats Karatsuba's bookkeeping.
constexpr size_t kKaratsubaThreshold = 24;
}  // namespace

BigInt BigInt::SchoolbookMul(const BigInt& a, const BigInt& b) {
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + ai * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + b.limbs_.size();
    while (carry != 0) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Trim();
  return out;
}

BigInt BigInt::MulMagnitude(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() < kKaratsubaThreshold ||
      b.limbs_.size() < kKaratsubaThreshold) {
    return SchoolbookMul(a, b);
  }
  // Karatsuba: split both operands at m limbs; three recursive products.
  size_t m = std::min(a.limbs_.size(), b.limbs_.size()) / 2;
  auto split = [m](const BigInt& v, BigInt* lo, BigInt* hi) {
    lo->limbs_.assign(v.limbs_.begin(),
                      v.limbs_.begin() + static_cast<long>(m));
    lo->Trim();
    hi->limbs_.assign(v.limbs_.begin() + static_cast<long>(m),
                      v.limbs_.end());
    hi->Trim();
  };
  BigInt a0, a1, b0, b1;
  split(a, &a0, &a1);
  split(b, &b0, &b1);
  BigInt z0 = MulMagnitude(a0, b0);
  BigInt z2 = MulMagnitude(a1, b1);
  BigInt z1 =
      MulMagnitude(AddMagnitude(a1, a0), AddMagnitude(b1, b0)) - z2 - z0;
  return (z2 << (64 * m)) + (z1 << (32 * m)) + z0;
}

BigInt BigInt::operator*(const BigInt& rhs) const {
  if (IsZero() || rhs.IsZero()) return BigInt();
  BigInt out = MulMagnitude(*this, rhs);
  out.negative_ = (negative_ != rhs.negative_) && !out.IsZero();
  return out;
}

BigInt BigInt::operator<<(size_t bits) const {
  if (IsZero() || bits == 0) return *this;
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

BigInt BigInt::operator>>(size_t bits) const {
  if (IsZero()) return *this;
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Trim();
  return out;
}

void BigInt::DivModMagnitude(const BigInt& num, const BigInt& den, BigInt* quot,
                             BigInt* rem) {
  // Knuth Algorithm D on 32-bit limbs. den must be nonzero.
  if (CompareMagnitude(num, den) < 0) {
    *quot = BigInt();
    *rem = num;
    rem->negative_ = false;
    return;
  }
  if (den.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    uint64_t d = den.limbs_[0];
    BigInt q;
    q.limbs_.assign(num.limbs_.size(), 0);
    uint64_t r = 0;
    for (size_t i = num.limbs_.size(); i-- > 0;) {
      uint64_t cur = (r << 32) | num.limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / d);
      r = cur % d;
    }
    q.Trim();
    *quot = q;
    *rem = BigInt(r, true);
    return;
  }

  // Normalize so the top limb of the divisor has its high bit set.
  size_t shift = 0;
  uint32_t top = den.limbs_.back();
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    ++shift;
  }
  BigInt u = num;
  u.negative_ = false;
  u = u << shift;
  BigInt v = den;
  v.negative_ = false;
  v = v << shift;

  size_t n = v.limbs_.size();
  size_t m = u.limbs_.size() - n;
  u.limbs_.push_back(0);  // Extra headroom limb u[m+n].

  BigInt q;
  q.limbs_.assign(m + 1, 0);
  const uint64_t kBase = 1ULL << 32;
  for (size_t j = m + 1; j-- > 0;) {
    uint64_t numerator =
        (static_cast<uint64_t>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    uint64_t qhat = numerator / v.limbs_[n - 1];
    uint64_t rhat = numerator % v.limbs_[n - 1];
    while (qhat >= kBase ||
           qhat * v.limbs_[n - 2] > ((rhat << 32) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += v.limbs_[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply-and-subtract qhat * v from u[j .. j+n].
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t p = qhat * v.limbs_[i] + carry;
      carry = p >> 32;
      int64_t t = static_cast<int64_t>(u.limbs_[i + j]) -
                  static_cast<int64_t>(p & 0xffffffffu) - borrow;
      if (t < 0) {
        t += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u.limbs_[i + j] = static_cast<uint32_t>(t);
    }
    int64_t t = static_cast<int64_t>(u.limbs_[j + n]) -
                static_cast<int64_t>(carry) - borrow;
    if (t < 0) {
      // qhat was one too large: add back.
      t += static_cast<int64_t>(kBase);
      --qhat;
      uint64_t carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u.limbs_[i + j]) + v.limbs_[i] + carry2;
        u.limbs_[i + j] = static_cast<uint32_t>(sum);
        carry2 = sum >> 32;
      }
      t += static_cast<int64_t>(carry2);
      t &= static_cast<int64_t>(kBase - 1);
    }
    u.limbs_[j + n] = static_cast<uint32_t>(t);
    q.limbs_[j] = static_cast<uint32_t>(qhat);
  }
  q.Trim();
  u.limbs_.resize(n);
  u.Trim();
  *quot = q;
  *rem = u >> shift;
}

void BigInt::DivMod(const BigInt& num, const BigInt& den, BigInt* quot,
                    BigInt* rem) {
  BigInt q, r;
  DivModMagnitude(num, den, &q, &r);
  // C semantics: quotient truncates toward zero, remainder follows dividend.
  q.negative_ = (num.negative_ != den.negative_) && !q.IsZero();
  r.negative_ = num.negative_ && !r.IsZero();
  *quot = q;
  *rem = r;
}

BigInt BigInt::operator/(const BigInt& rhs) const {
  BigInt q, r;
  DivMod(*this, rhs, &q, &r);
  return q;
}

BigInt BigInt::operator%(const BigInt& rhs) const {
  BigInt q, r;
  DivMod(*this, rhs, &q, &r);
  return r;
}

BigInt BigInt::Mod(const BigInt& m) const {
  BigInt r = *this % m;
  if (r.IsNegative()) r = r + (m.IsNegative() ? -m : m);
  return r;
}

BigInt BigInt::AddMod(const BigInt& rhs, const BigInt& m) const {
  return (*this + rhs).Mod(m);
}

BigInt BigInt::SubMod(const BigInt& rhs, const BigInt& m) const {
  return (*this - rhs).Mod(m);
}

BigInt BigInt::MulMod(const BigInt& rhs, const BigInt& m) const {
  return (*this * rhs).Mod(m);
}

BigInt BigInt::PowMod(const BigInt& e, const BigInt& m) const {
  BigInt base = Mod(m);
  BigInt result(1);
  if (m == BigInt(1)) return BigInt();
  // Fast path: Montgomery exponentiation for odd multi-limb moduli with
  // non-trivial exponents. The per-modulus context is cached process-wide,
  // so repeated exponentiations mod the same value (Paillier n^2, Pedersen
  // p, RSA n) skip the R^2-division setup entirely.
  if (m.IsOdd() && m.limbs_.size() >= 2 && e.BitLength() > 16) {
    auto ctx = MontgomeryContext::Shared(m);
    if (ctx.ok()) return (*ctx)->PowMod(*this, e);
  }
  size_t bits = e.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = result.MulMod(result, m);
    if (e.Bit(i)) result = result.MulMod(base, m);
  }
  return result;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a, y = b;
  x.negative_ = false;
  y.negative_ = false;
  while (!y.IsZero()) {
    BigInt r = x % y;
    x = y;
    y = r;
  }
  return x;
}

BigInt BigInt::Lcm(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  BigInt g = Gcd(a, b);
  BigInt out = (a / g) * b;
  out.negative_ = false;
  return out;
}

Result<BigInt> BigInt::InvMod(const BigInt& m) const {
  // Extended Euclid on (a mod m, m).
  BigInt a = Mod(m);
  if (a.IsZero()) return Status::InvalidArgument("no inverse: zero");
  BigInt r0 = m, r1 = a;
  BigInt t0(0), t1(1);
  while (!r1.IsZero()) {
    BigInt q = r0 / r1;
    BigInt r2 = r0 - q * r1;
    r0 = r1;
    r1 = r2;
    BigInt t2 = t0 - q * t1;
    t0 = t1;
    t1 = t2;
  }
  if (r0 != BigInt(1)) {
    return Status::InvalidArgument("no inverse: gcd != 1");
  }
  return t0.Mod(m);
}

}  // namespace prever::crypto
