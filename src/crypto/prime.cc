#include "crypto/prime.h"

namespace prever::crypto {

namespace {
constexpr uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,
    53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109,
    113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};
}  // namespace

bool IsProbablePrime(const BigInt& n, Drbg& drbg, int rounds) {
  if (n < BigInt(2)) return false;
  if (n == BigInt(2)) return true;
  if (n.IsEven()) return false;
  for (uint32_t p : kSmallPrimes) {
    BigInt bp(p);
    if (n == bp) return true;
    if ((n % bp).IsZero()) return false;
  }
  // Write n-1 = d * 2^s with d odd.
  BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  size_t s = 0;
  while (d.IsEven()) {
    d = d >> 1;
    ++s;
  }
  BigInt n_minus_3 = n - BigInt(3);
  for (int round = 0; round < rounds; ++round) {
    // Witness a in [2, n-2].
    BigInt a = drbg.RandomBelow(n_minus_3) + BigInt(2);
    BigInt x = a.PowMod(d, n);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool composite = true;
    for (size_t i = 1; i < s; ++i) {
      x = x.MulMod(x, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt GeneratePrime(size_t bits, Drbg& drbg) {
  for (;;) {
    BigInt candidate = drbg.RandomBits(bits);
    // Force odd.
    if (candidate.IsEven()) candidate = candidate + BigInt(1);
    if (candidate.BitLength() != bits) continue;
    if (IsProbablePrime(candidate, drbg)) return candidate;
  }
}

BigInt GenerateDistinctPrime(size_t bits, const BigInt& avoid, Drbg& drbg) {
  for (;;) {
    BigInt p = GeneratePrime(bits, drbg);
    if (p != avoid) return p;
  }
}

}  // namespace prever::crypto
