#ifndef PREVER_CRYPTO_ZKP_H_
#define PREVER_CRYPTO_ZKP_H_

#include <vector>

#include "common/status.h"
#include "crypto/bigint.h"
#include "crypto/drbg.h"
#include "crypto/pedersen.h"

namespace prever::crypto {

/// Non-interactive Σ-protocols (Fiat–Shamir over SHA-256) on Pedersen
/// commitments. These stand in for the zk-SNARKs the paper cites [35]: the
/// data manager proves it enforced a bound without revealing the value
/// (DESIGN.md §2).

/// Proof of knowledge of an opening (m, r) of C = g^m h^r.
struct OpeningProof {
  BigInt t;   ///< Commitment to the prover nonces, g^a h^b.
  BigInt z1;  ///< a + e*m mod q.
  BigInt z2;  ///< b + e*r mod q.
};

OpeningProof ProveOpening(const PedersenParams& params,
                          const PedersenCommitment& commitment,
                          const BigInt& m, const BigInt& r, Drbg& drbg);

bool VerifyOpening(const PedersenParams& params,
                   const PedersenCommitment& commitment,
                   const OpeningProof& proof);

/// CDS OR-proof that a commitment opens to 0 or to 1 (without revealing
/// which). Building block of the range proof.
struct BitProof {
  BigInt t0, t1;  ///< Per-branch nonce commitments.
  BigInt e0, e1;  ///< Challenge split, e0 + e1 = H(...).
  BigInt z0, z1;  ///< Per-branch responses.
};

/// Requires bit in {0, 1} and commitment == Commit(bit, r).
Result<BitProof> ProveBit(const PedersenParams& params,
                          const PedersenCommitment& commitment, int bit,
                          const BigInt& r, Drbg& drbg);

bool VerifyBit(const PedersenParams& params,
               const PedersenCommitment& commitment, const BitProof& proof);

/// Proof that the committed value lies in [0, 2^num_bits): bitwise
/// decomposition commitments whose weighted product reconstructs the
/// original commitment, plus a BitProof per bit.
struct RangeProof {
  std::vector<PedersenCommitment> bit_commitments;  ///< LSB first.
  std::vector<BitProof> bit_proofs;
};

/// Requires m in [0, 2^num_bits) and commitment == Commit(m, r).
Result<RangeProof> ProveRange(const PedersenParams& params,
                              const PedersenCommitment& commitment,
                              const BigInt& m, const BigInt& r,
                              size_t num_bits, Drbg& drbg);

bool VerifyRange(const PedersenParams& params,
                 const PedersenCommitment& commitment, const RangeProof& proof,
                 size_t num_bits);

/// Proof that committed value m satisfies m <= bound, built as a range proof
/// on (bound - m): the canonical PReVer regulation shape (e.g. weekly hours
/// <= 40). The verifier derives the commitment to bound - m homomorphically.
Result<RangeProof> ProveUpperBound(const PedersenParams& params,
                                   const PedersenCommitment& commitment,
                                   const BigInt& m, const BigInt& r,
                                   const BigInt& bound, size_t num_bits,
                                   Drbg& drbg);

bool VerifyUpperBound(const PedersenParams& params,
                      const PedersenCommitment& commitment,
                      const RangeProof& proof, const BigInt& bound,
                      size_t num_bits);

/// Proof that committed value m satisfies m >= bound (e.g. "at least two
/// vaccine doses"), built as a range proof on (m - bound).
Result<RangeProof> ProveLowerBound(const PedersenParams& params,
                                   const PedersenCommitment& commitment,
                                   const BigInt& m, const BigInt& r,
                                   const BigInt& bound, size_t num_bits,
                                   Drbg& drbg);

bool VerifyLowerBound(const PedersenParams& params,
                      const PedersenCommitment& commitment,
                      const RangeProof& proof, const BigInt& bound,
                      size_t num_bits);

}  // namespace prever::crypto

#endif  // PREVER_CRYPTO_ZKP_H_
