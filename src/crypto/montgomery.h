#ifndef PREVER_CRYPTO_MONTGOMERY_H_
#define PREVER_CRYPTO_MONTGOMERY_H_

#include <vector>

#include "common/status.h"
#include "crypto/bigint.h"

namespace prever::crypto {

/// Montgomery-form modular arithmetic for a fixed odd modulus (CIOS on
/// 32-bit limbs). One context construction costs a division (R^2 mod n);
/// every subsequent modular multiplication avoids division entirely, which
/// makes modular exponentiation several times faster than the plain
/// divide-and-reduce path. BigInt::PowMod routes through this automatically
/// for odd moduli; the class is public for callers with long-lived moduli
/// (Paillier n^2, RSA n, Pedersen p) who want to reuse the context.
class MontgomeryContext {
 public:
  /// Fails unless modulus is odd and > 1.
  static Result<MontgomeryContext> Create(const BigInt& modulus);

  const BigInt& modulus() const { return n_; }

  /// a * R mod n (entering the Montgomery domain); requires 0 <= a < n.
  BigInt ToMontgomery(const BigInt& a) const;
  /// a * R^-1 mod n (leaving the domain).
  BigInt FromMontgomery(const BigInt& a_mont) const;

  /// Montgomery product of two domain values (a*b*R^-1 mod n).
  BigInt MulMont(const BigInt& a_mont, const BigInt& b_mont) const;

  /// base^exp mod n with ordinary-domain inputs and output.
  /// Requires exp >= 0.
  BigInt PowMod(const BigInt& base, const BigInt& exp) const;

 private:
  MontgomeryContext() = default;

  void MontMulLimbs(const std::vector<uint32_t>& a,
                    const std::vector<uint32_t>& b,
                    std::vector<uint32_t>* out) const;
  std::vector<uint32_t> PadLimbs(const BigInt& v) const;
  BigInt FromPadded(std::vector<uint32_t> limbs) const;

  BigInt n_;
  std::vector<uint32_t> n_limbs_;
  size_t k_ = 0;           ///< Limb count of the modulus.
  uint32_t n_prime_ = 0;   ///< -n^{-1} mod 2^32.
  BigInt r2_;              ///< R^2 mod n with R = 2^(32k).
  BigInt one_mont_;        ///< R mod n (Montgomery form of 1).
};

}  // namespace prever::crypto

#endif  // PREVER_CRYPTO_MONTGOMERY_H_
