#ifndef PREVER_CRYPTO_MONTGOMERY_H_
#define PREVER_CRYPTO_MONTGOMERY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "crypto/bigint.h"

namespace prever::crypto {

/// Montgomery-form modular arithmetic for a fixed odd modulus.
///
/// Internally the context repacks BigInt's 32-bit limbs into 64-bit limbs
/// and runs CIOS (coarsely integrated operand scanning) with unsigned
/// __int128 accumulation, which roughly quarters the inner-loop multiply
/// count versus the former 32-bit kernel. One context construction costs a
/// division (R^2 mod n); every subsequent modular multiplication avoids
/// division entirely. PowMod uses sliding-window exponentiation over
/// precomputed odd powers instead of bit-at-a-time square-and-multiply.
///
/// BigInt::PowMod routes through a process-wide per-modulus cache of these
/// contexts (see Shared) for odd moduli; the class is public for callers
/// with long-lived moduli (Paillier n^2, RSA n, Pedersen p) who want to
/// hold the context — or a FixedBaseTable — directly.
class MontgomeryContext {
 public:
  /// Raw little-endian 64-bit limb vector of a Montgomery-domain residue,
  /// always exactly `limbs64()` wide. Exposed so FixedBaseTable and hot
  /// loops can stay in the packed domain without BigInt round-trips.
  using Limbs = std::vector<uint64_t>;

  /// Fails unless modulus is odd and > 1.
  static Result<MontgomeryContext> Create(const BigInt& modulus);

  /// Process-wide cached context for `modulus` (thread-safe). Repeated
  /// exponentiations mod the same value — Paillier n^2, Pedersen p, RSA n —
  /// pay the R^2-division setup once instead of per call.
  static Result<std::shared_ptr<const MontgomeryContext>> Shared(
      const BigInt& modulus);

  const BigInt& modulus() const { return n_; }
  size_t limbs64() const { return k_; }

  /// a * R mod n (entering the Montgomery domain); requires 0 <= a < n.
  BigInt ToMontgomery(const BigInt& a) const;
  /// a * R^-1 mod n (leaving the domain).
  BigInt FromMontgomery(const BigInt& a_mont) const;

  /// Montgomery product of two domain values (a*b*R^-1 mod n).
  BigInt MulMont(const BigInt& a_mont, const BigInt& b_mont) const;

  /// base^exp mod n with ordinary-domain inputs and output.
  /// Requires exp >= 0.
  BigInt PowMod(const BigInt& base, const BigInt& exp) const;

  /// Packed-domain primitives (Montgomery residues as raw 64-bit limbs).
  Limbs PackMont(const BigInt& a) const;      ///< Ordinary -> domain limbs.
  BigInt UnpackMont(const Limbs& a) const;    ///< Domain limbs -> ordinary.
  Limbs OneMont() const;                      ///< Montgomery form of 1.
  /// out = a * b * R^-1 mod n; `out` may alias `a` or `b`.
  void MulMontLimbs(const Limbs& a, const Limbs& b, Limbs* out) const;
  /// Packed-domain exponentiation: base_mont^exp (result in the domain).
  Limbs PowMont(const Limbs& base_mont, const BigInt& exp) const;

 private:
  friend class FixedBaseTable;

  MontgomeryContext() = default;

  /// CIOS kernel. `t` is scratch of size k_ + 2 (contents ignored); the
  /// reduced product is left in t[0..k_).
  void MontMulRaw(const uint64_t* a, const uint64_t* b, uint64_t* t) const;

  Limbs Pack(const BigInt& v) const;   ///< 32->64-bit limbs, padded to k_.
  BigInt Unpack(const Limbs& v) const;

  BigInt n_;
  Limbs n64_;              ///< Modulus as 64-bit limbs.
  size_t k_ = 0;           ///< 64-bit limb count of the modulus.
  uint64_t n_prime_ = 0;   ///< -n^{-1} mod 2^64.
  Limbs r2_;               ///< R^2 mod n with R = 2^(64k), packed.
  Limbs one_;              ///< R mod n (Montgomery form of 1), packed.
  Limbs unit_;             ///< Plain 1 (not in the domain), for exits.
};

/// Precomputed windowed table for exponentiations of ONE fixed base modulo
/// one fixed modulus — Pedersen g/h, ElGamal g/y, ZK verification bases.
///
/// Layout: radix-2^w decomposition of the exponent; table entry (i, d)
/// holds base^(d * 2^(w*i)) in the Montgomery domain, so an exponentiation
/// is one MontMul per non-zero digit and NO squarings: ~bits/w MontMuls
/// versus ~1.4*bits for generic sliding window (≈5x fewer at w = 4).
/// Memory is windows * (2^w - 1) residues; at 4-bit windows that is ~32 KiB
/// for a 256-bit group and ~1.1 MiB for a 1536-bit group — the table pays
/// for itself after roughly three exponentiations.
///
/// Immutable after construction and safe for concurrent use.
class FixedBaseTable {
 public:
  /// `max_exp_bits` bounds the exponents the table covers (e.g. q.BitLength()
  /// for Schnorr-group exponents). Wider exponents fall back to the generic
  /// path. Requires a valid shared context for an odd modulus.
  FixedBaseTable(std::shared_ptr<const MontgomeryContext> ctx,
                 const BigInt& base, size_t max_exp_bits,
                 size_t window_bits = 4);

  const MontgomeryContext& ctx() const { return *ctx_; }
  const BigInt& base() const { return base_; }

  /// base^exp mod n. Requires exp >= 0 (any width; wide ones fall back).
  BigInt PowMod(const BigInt& exp) const;

  /// Packed-domain variant for hot loops composing several powers.
  MontgomeryContext::Limbs PowMont(const BigInt& exp) const;

 private:
  std::shared_ptr<const MontgomeryContext> ctx_;
  BigInt base_;
  size_t window_bits_;
  size_t windows_;
  size_t max_exp_bits_;
  /// Flattened [window][digit-1] -> Montgomery residue, digit in [1, 2^w).
  std::vector<MontgomeryContext::Limbs> table_;
};

}  // namespace prever::crypto

#endif  // PREVER_CRYPTO_MONTGOMERY_H_
