#include "crypto/hmac.h"

#include "crypto/sha256.h"

namespace prever::crypto {

Bytes HmacSha256(const Bytes& key, const Bytes& message) {
  constexpr size_t kBlock = 64;
  Bytes k = key;
  if (k.size() > kBlock) k = Sha256::Hash(k);
  k.resize(kBlock, 0);

  Bytes ipad(kBlock), opad(kBlock);
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.Update(ipad);
  inner.Update(message);
  Bytes inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad);
  outer.Update(inner_digest);
  return outer.Finish();
}

Bytes HkdfExpand(const Bytes& prk, const Bytes& info, size_t length) {
  Bytes out;
  Bytes t;
  uint8_t counter = 1;
  while (out.size() < length) {
    Bytes block = t;
    Append(block, info);
    block.push_back(counter++);
    t = HmacSha256(prk, block);
    Append(out, t);
  }
  out.resize(length);
  return out;
}

Bytes Hkdf(const Bytes& salt, const Bytes& ikm, const Bytes& info,
           size_t length) {
  Bytes prk = HmacSha256(salt, ikm);
  return HkdfExpand(prk, info, length);
}

}  // namespace prever::crypto
