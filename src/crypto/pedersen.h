#ifndef PREVER_CRYPTO_PEDERSEN_H_
#define PREVER_CRYPTO_PEDERSEN_H_

#include "common/status.h"
#include "crypto/bigint.h"
#include "crypto/drbg.h"
#include "crypto/montgomery.h"

namespace prever::crypto {

/// Schnorr group for Pedersen commitments: a safe prime p = 2q + 1 with
/// generators g, h of the order-q subgroup such that log_g(h) is unknown
/// (h is derived by hashing into the group — "nothing up my sleeve").
struct PedersenParams {
  BigInt p;  ///< Safe prime modulus.
  BigInt q;  ///< Subgroup order, (p - 1) / 2.
  BigInt g;  ///< Subgroup generator.
  BigInt h;  ///< Second generator with unknown discrete log w.r.t. g.

  /// Standard 1536-bit group (RFC 3526 MODP group 5 prime).
  static const PedersenParams& Standard1536();
  /// 512-bit group for benchmarks (research-scale).
  static const PedersenParams& Bench512();
  /// 256-bit group for fast unit tests. NOT secure.
  static const PedersenParams& Test256();
};

/// Per-group acceleration state: the cached Montgomery context for p plus
/// fixed-base tables for g and h sized for exponents in [0, q). Every
/// commitment / Σ-protocol exponentiation on a fixed generator goes through
/// these tables instead of generic square-and-multiply.
struct PedersenAccel {
  std::shared_ptr<const MontgomeryContext> ctx;
  FixedBaseTable g;
  FixedBaseTable h;
  BigInt g_inv;  ///< g^{-1} mod p, cached for the bit-proof OR branches.

  /// g^a * h^b mod p in one pass (two table walks, one MontMul, one exit
  /// from the Montgomery domain) — the Σ-protocol workhorse.
  BigInt PowGH(const BigInt& a, const BigInt& b) const;
};

/// Process-wide accel cache for a group (thread-safe; built on first use).
/// The three standard groups are long-lived statics, so their tables are
/// built exactly once per process.
const PedersenAccel& GetPedersenAccel(const PedersenParams& params);

/// A Pedersen commitment C = g^m h^r mod p. Perfectly hiding,
/// computationally binding; additively homomorphic:
///   Commit(m1, r1) * Commit(m2, r2) = Commit(m1 + m2, r1 + r2).
struct PedersenCommitment {
  BigInt c;

  bool operator==(const PedersenCommitment& o) const { return c == o.c; }
};

/// Commits to m (reduced mod q) with explicit randomness r.
PedersenCommitment PedersenCommit(const PedersenParams& params,
                                  const BigInt& m, const BigInt& r);

/// Commits with fresh randomness; returns the commitment and the opening r.
struct PedersenOpening {
  PedersenCommitment commitment;
  BigInt randomness;
};
PedersenOpening PedersenCommitFresh(const PedersenParams& params,
                                    const BigInt& m, Drbg& drbg);

/// Checks C == g^m h^r.
bool PedersenVerify(const PedersenParams& params,
                    const PedersenCommitment& commitment, const BigInt& m,
                    const BigInt& r);

/// Homomorphic product: commits to the sum of the two committed values.
PedersenCommitment PedersenAdd(const PedersenParams& params,
                               const PedersenCommitment& a,
                               const PedersenCommitment& b);

/// C^k: commits to k * m (randomness scales to k * r).
PedersenCommitment PedersenScale(const PedersenParams& params,
                                 const PedersenCommitment& a, const BigInt& k);

}  // namespace prever::crypto

#endif  // PREVER_CRYPTO_PEDERSEN_H_
