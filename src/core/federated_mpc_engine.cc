#include "core/federated_mpc_engine.h"

#include "obs/tracing.h"

#include "crypto/sha256.h"

namespace prever::core {

namespace {
constexpr size_t kComparisonBits = 32;
}  // namespace

FederatedMpcEngine::FederatedMpcEngine(
    std::vector<FederatedPlatform*> platforms,
    const constraint::ConstraintCatalog* regulations,
    OrderingService* ordering, uint64_t dealer_seed,
    constraint::ProgramCache* programs)
    : platforms_(std::move(platforms)),
      regulations_(regulations),
      ordering_(ordering),
      regulation_forms_(regulations),
      dealer_rng_(dealer_seed) {
  platform_verifiers_.reserve(platforms_.size());
  for (FederatedPlatform* p : platforms_) {
    platform_verifiers_.push_back(std::make_unique<constraint::CompiledVerifier>(
        &p->internal_constraints, &p->db, programs));
  }
}

Status FederatedMpcEngine::ValidateRegulations() const {
  for (const constraint::Constraint& c : regulations_->constraints()) {
    auto forms = constraint::ExtractLinearConjunction(*c.expr);
    if (!forms.ok()) {
      return Status::NotSupported(
          "regulation '" + c.name +
          "' is outside the linear bound class the MPC engine supports: " +
          forms.status().message());
    }
  }
  return Status::Ok();
}

Status FederatedMpcEngine::CheckRegulation(size_t index, size_t platform_index,
                                           const Update& update) {
  const constraint::Constraint& regulation =
      regulations_->constraints()[index];
  PREVER_ASSIGN_OR_RETURN(const auto* forms,
                          regulation_forms_.ForConstraint(index));
  for (const constraint::LinearBoundForm& form : *forms) {
    // Each platform evaluates the aggregate over ITS private database. The
    // WHERE predicate may reference update fields (e.g. worker id), which
    // are shared with the platforms for routing — the Separ model, where
    // task metadata is visible to the involved platforms but totals are not.
    std::vector<uint64_t> local_aggregates;
    local_aggregates.reserve(platforms_.size());
    for (size_t i = 0; i < platforms_.size(); ++i) {
      constraint::EvalContext ctx{&platforms_[i]->db, &update.fields,
                                  update.timestamp};
      PREVER_ASSIGN_OR_RETURN(
          int64_t local,
          platform_verifiers_[i]->EvaluateAggregate(*form.aggregate, ctx));
      if (local < 0) {
        return Status::NotSupported(
            "MPC engine requires non-negative local aggregates");
      }
      local_aggregates.push_back(static_cast<uint64_t>(local));
    }
    // The submitting platform contributes the update's own terms.
    for (const std::string& field : form.update_terms) {
      auto it = update.fields.find(field);
      if (it == update.fields.end()) {
        return Status::InvalidArgument("update lacks field '" + field + "'");
      }
      PREVER_ASSIGN_OR_RETURN(int64_t v, it->second.AsInt64());
      if (v < 0) {
        return Status::NotSupported("negative update terms not supported");
      }
      local_aggregates[platform_index] += static_cast<uint64_t>(v);
    }

    bool satisfied;
    if (form.direction == constraint::BoundDirection::kUpper) {
      if (form.bound < 0) {
        satisfied = false;  // Non-negative sums cannot meet negative bounds.
      } else {
        PREVER_ASSIGN_OR_RETURN(
            satisfied, mpc::SecureComparison::SumLessEqual(
                           local_aggregates, static_cast<uint64_t>(form.bound),
                           kComparisonBits, dealer_rng_, &transcript_));
      }
    } else {
      // sum >= bound  ⇔  NOT (sum <= bound - 1).
      if (form.bound <= 0) {
        satisfied = true;
      } else {
        PREVER_ASSIGN_OR_RETURN(
            bool below, mpc::SecureComparison::SumLessEqual(
                            local_aggregates,
                            static_cast<uint64_t>(form.bound) - 1,
                            kComparisonBits, dealer_rng_, &transcript_));
        satisfied = !below;
      }
    }
    if (!satisfied) {
      return Status::ConstraintViolation("update violates regulation '" +
                                         regulation.name + "'");
    }
  }
  return Status::Ok();
}

Status FederatedMpcEngine::SubmitVia(size_t platform_index,
                                     const Update& update) {
  metrics_.OnSubmit();
  PREVER_TRACE_SPAN(metrics_.submit_ns());
  PREVER_CAUSAL_ROOT_SPAN(causal_root, obs::TraceStage::kSubmit, 0);
  if (platform_index >= platforms_.size()) {
    return metrics_.Finish(Status::InvalidArgument("no such platform"));
  }
  FederatedPlatform* home = platforms_[platform_index];

  obs::ScopedSpan verify_span(metrics_.verify_ns());
  obs::TraceSpan causal_verify(obs::TraceStage::kVerify);
  // Local internal constraints first (cheap, no cross-platform traffic).
  constraint::EvalContext local_ctx{&home->db, &update.fields,
                                    update.timestamp};
  Status internal = platform_verifiers_[platform_index]->VerifyAll(local_ctx);
  if (!internal.ok()) return metrics_.Finish(internal);

  // Global regulations via MPC across all platforms.
  for (size_t r = 0; r < regulations_->size(); ++r) {
    Status checked = CheckRegulation(r, platform_index, update);
    if (!checked.ok()) return metrics_.Finish(checked);
  }
  verify_span.End();
  causal_verify.End();

  // Apply locally; order a content DIGEST globally (other platforms must
  // not see the private update body — they audit existence and order only).
  PREVER_TRACE_SPAN(metrics_.ledger_ns());
  PREVER_CAUSAL_SPAN(causal_ledger, obs::TraceStage::kLedgerPhase);
  Status applied = home->db.Apply(update.mutation);
  if (!applied.ok()) return metrics_.Finish(applied);
  BinaryWriter w;
  w.WriteString(home->id);
  w.WriteBytes(crypto::Sha256::Hash(update.Encode()));
  Status ordered = ordering_->Append(w.Take(), update.timestamp);
  return metrics_.Finish(ordered);
}

}  // namespace prever::core
