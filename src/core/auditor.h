#ifndef PREVER_CORE_AUDITOR_H_
#define PREVER_CORE_AUDITOR_H_

#include <vector>

#include "common/status.h"
#include "ledger/block.h"
#include "ledger/ledger_db.h"

namespace prever::core {

/// RC4: "enable any participant to verify the integrity of stored data with
/// sound privacy guarantees." The auditor needs no privileged access — only
/// digests, proofs, and (for full audits) the journal itself, which in
/// PReVer engines contains hashes and ciphertexts, not plaintext.
class IntegrityAuditor {
 public:
  /// Full single-ledger audit: journal vs. Merkle tree, dense sequences.
  static Status AuditLedger(const ledger::LedgerDb& ledger);

  /// Full chain audit: linkage, heights, transaction roots.
  static Status AuditChain(const ledger::Blockchain& chain);

  /// Client-side check that a manager's new digest extends the previously
  /// observed one (detects history rewriting between two audits).
  static Status CheckExtension(const ledger::LedgerDigest& previous,
                               const ledger::LedgerDigest& current,
                               const ledger::ConsistencyProof& proof);

  /// Federated check: all replicas' ledgers must agree on the committed
  /// prefix (divergence ⇒ consensus-layer compromise). Compares digests at
  /// the shortest replica's size.
  static Status CheckReplicaAgreement(
      const std::vector<const ledger::LedgerDb*>& replicas);
};

}  // namespace prever::core

#endif  // PREVER_CORE_AUDITOR_H_
