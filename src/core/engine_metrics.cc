#include "core/engine_metrics.h"

namespace prever::core {

EngineMetrics::EngineMetrics(const std::string& engine,
                             obs::Registry* registry) {
  const obs::Labels base{{"engine", engine}};
  auto outcome = [&](const char* o) {
    obs::Labels l = base;
    l["outcome"] = o;
    return registry->GetCounter("prever_engine_updates_total", l);
  };
  submitted_ = outcome("submitted");
  accepted_ = outcome("accepted");
  rejected_constraint_ = outcome("rejected_constraint");
  rejected_error_ = outcome("rejected_error");
  submit_ns_ = registry->GetHistogram("prever_engine_submit_ns", base);
  auto phase = [&](const char* p) {
    obs::Labels l = base;
    l["phase"] = p;
    return registry->GetHistogram("prever_engine_phase_ns", l);
  };
  verify_ns_ = phase("verify");
  crypto_ns_ = phase("crypto");
  token_ns_ = phase("token");
  ledger_ns_ = phase("ledger");
  baseline_.submitted = submitted_->value();
  baseline_.accepted = accepted_->value();
  baseline_.rejected_constraint = rejected_constraint_->value();
  baseline_.rejected_error = rejected_error_->value();
}

void EngineMetrics::OnSubmit() { submitted_->Inc(); }

Status EngineMetrics::Finish(Status status) {
  if (status.ok()) {
    accepted_->Inc();
  } else if (status.code() == StatusCode::kConstraintViolation) {
    rejected_constraint_->Inc();
  } else {
    rejected_error_->Inc();
  }
  return status;
}

EngineStats EngineMetrics::Snapshot() const {
  EngineStats s;
  s.submitted = submitted_->value() - baseline_.submitted;
  s.accepted = accepted_->value() - baseline_.accepted;
  s.rejected_constraint =
      rejected_constraint_->value() - baseline_.rejected_constraint;
  s.rejected_error = rejected_error_->value() - baseline_.rejected_error;
  return s;
}

}  // namespace prever::core
