#ifndef PREVER_CORE_ENGINE_METRICS_H_
#define PREVER_CORE_ENGINE_METRICS_H_

#include <string>

#include "common/status.h"
#include "core/update.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace prever::core {

/// Registry-backed bookkeeping shared by every UpdateEngine. Each engine owns
/// one instance; the underlying counters/histograms live in a Registry keyed
/// by `engine=<name>`, so two instances of the same engine share metric
/// families. stats() semantics stay per-instance: counters are read as deltas
/// against a baseline captured at construction.
///
/// This replaces the hand-rolled `++stats_.accepted` / `++stats_.rejected_*`
/// blocks each engine used to duplicate: call OnSubmit() on entry and return
/// through Finish(status), which classifies the outcome once.
class EngineMetrics {
 public:
  /// `engine` labels every metric family; pass the engine's name(). Metrics
  /// register in `registry` (Default() for production engines).
  explicit EngineMetrics(const std::string& engine,
                         obs::Registry* registry = &obs::Registry::Default());

  /// Counts a submission attempt. Call once at the top of SubmitUpdate.
  void OnSubmit();

  /// Classifies `status` into accepted / rejected_constraint / rejected_error
  /// and returns it unchanged, so engines can `return metrics_.Finish(s);`.
  Status Finish(Status status);

  /// Per-instance outcome totals (counter values minus construction-time
  /// baseline), preserving the pre-registry EngineStats contract.
  EngineStats Snapshot() const;

  /// Phase histograms (wall-clock ns) for PREVER_TRACE_SPAN at call sites.
  obs::Histogram* submit_ns() { return submit_ns_; }
  obs::Histogram* verify_ns() { return verify_ns_; }
  obs::Histogram* crypto_ns() { return crypto_ns_; }
  obs::Histogram* token_ns() { return token_ns_; }
  obs::Histogram* ledger_ns() { return ledger_ns_; }

 private:
  obs::Counter* submitted_;
  obs::Counter* accepted_;
  obs::Counter* rejected_constraint_;
  obs::Counter* rejected_error_;
  obs::Histogram* submit_ns_;
  obs::Histogram* verify_ns_;
  obs::Histogram* crypto_ns_;
  obs::Histogram* token_ns_;
  obs::Histogram* ledger_ns_;
  EngineStats baseline_;  ///< Counter values when this instance was created.
};

}  // namespace prever::core

#endif  // PREVER_CORE_ENGINE_METRICS_H_
