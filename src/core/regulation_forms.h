#ifndef PREVER_CORE_REGULATION_FORMS_H_
#define PREVER_CORE_REGULATION_FORMS_H_

#include <vector>

#include "constraint/constraint.h"
#include "constraint/linear.h"

namespace prever::core {

/// Per-engine cache of the linear bound forms of a regulation catalog.
///
/// ExtractLinearConjunction clones the aggregate subtree, so re-extracting
/// per submitted update both re-walks the AST and hands the compiled
/// verifier a fresh Expr identity every time — defeating its per-expression
/// aggregate caches. Extracting once per catalog revision keeps the Expr
/// pointers stable for the lifetime of the forms, which is what
/// CompiledVerifier::EvaluateAggregate keys on.
class RegulationForms {
 public:
  /// `regulations` must outlive this object.
  explicit RegulationForms(const constraint::ConstraintCatalog* regulations)
      : regulations_(regulations) {}

  /// Forms of constraint `index` (aligned with regulations->constraints()),
  /// re-extracted only when the catalog's revision moved. Extraction errors
  /// (constraint outside the linear class) surface per lookup, exactly like
  /// the previous extract-per-submit behavior.
  Result<const std::vector<constraint::LinearBoundForm>*> ForConstraint(
      size_t index);

 private:
  const constraint::ConstraintCatalog* regulations_;
  bool ready_ = false;
  uint64_t revision_ = 0;
  /// One entry per constraint: the forms, or the extraction error.
  std::vector<Result<std::vector<constraint::LinearBoundForm>>> forms_;
};

}  // namespace prever::core

#endif  // PREVER_CORE_REGULATION_FORMS_H_
