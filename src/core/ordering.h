#ifndef PREVER_CORE_ORDERING_H_
#define PREVER_CORE_ORDERING_H_

#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "consensus/pbft.h"
#include "consensus/raft.h"
#include "ledger/ledger_db.h"
#include "net/sim_net.h"
#include "obs/registry.h"

namespace prever::core {

/// How verified updates reach the immutable store (§4 RC4): a centralized
/// ledger database for the single-manager setting, or consensus-replicated
/// ledgers (PBFT for mutually distrustful managers, Raft as the §6 CFT
/// comparator). Engines order through this interface and stay agnostic.
class OrderingService {
 public:
  virtual ~OrderingService() = default;

  /// Durably appends `payload`; returns only after the payload is committed
  /// on a quorum (consensus impls drive the simulated network to completion).
  virtual Status Append(const Bytes& payload, SimTime timestamp) = 0;

  /// A ledger reflecting the committed order (for consensus impls, the
  /// first correct replica's ledger).
  virtual const ledger::LedgerDb& Ledger() const = 0;

  /// Committed entries so far.
  virtual uint64_t CommittedCount() const = 0;
};

/// Centralized ledger database ordering (Amazon QLDB / LedgerDB style).
class CentralizedOrdering : public OrderingService {
 public:
  CentralizedOrdering() = default;

  Status Append(const Bytes& payload, SimTime timestamp) override;
  const ledger::LedgerDb& Ledger() const override { return ledger_; }
  uint64_t CommittedCount() const override { return ledger_.size(); }

  ledger::LedgerDb& MutableLedger() { return ledger_; }

 private:
  ledger::LedgerDb ledger_;
};

/// PBFT-replicated ordering: each replica maintains its own ledger; Append
/// submits to the cluster and drains the simulated network until a quorum
/// has executed the command. Payloads travel in batch envelopes, so one
/// consensus instance can carry many updates (the StreamChain/FastFabric
/// batching lever §4 alludes to for Fabric's overhead).
class PbftOrdering : public OrderingService {
 public:
  /// `proto_label` tags this cluster's commit-latency histogram in the
  /// default registry (sharded deployments use "pbft-sharded").
  PbftOrdering(size_t num_replicas, net::SimNetConfig net_config,
               const std::string& proto_label = "pbft");

  Status Append(const Bytes& payload, SimTime timestamp) override;
  /// Orders a whole batch through ONE consensus instance; the replica
  /// ledgers still record one entry per payload.
  Status AppendBatch(const std::vector<Bytes>& payloads, SimTime timestamp);

  const ledger::LedgerDb& Ledger() const override { return ledgers_[0]; }
  uint64_t CommittedCount() const override { return committed_; }

  net::SimNetwork& network() { return *net_; }
  const ledger::LedgerDb& ReplicaLedger(size_t i) const { return ledgers_[i]; }
  size_t num_replicas() const { return ledgers_.size(); }

 private:
  std::unique_ptr<net::SimNetwork> net_;
  std::unique_ptr<consensus::PbftCluster> cluster_;
  std::vector<ledger::LedgerDb> ledgers_;
  uint64_t committed_ = 0;
  uint64_t batch_counter_ = 0;  // Makes identical batches distinct commands.
  obs::Histogram* commit_latency_us_;  // Sim-time submit -> replica-0 commit.
};

/// SharPer/Qanaat-style sharded ordering (§4 RC4: "Qanaat further provides
/// scalability by partitioning data into data shards"): k independent PBFT
/// clusters, each ordering the updates routed to it by key. Shards progress
/// in parallel (independent simulated networks), so aggregate throughput
/// scales with the shard count for single-shard updates. Cross-shard
/// transactions are out of scope (they need SharPer's cross-cluster
/// protocol; see DESIGN.md §6).
class ShardedPbftOrdering : public OrderingService {
 public:
  ShardedPbftOrdering(size_t num_shards, size_t replicas_per_shard,
                      net::SimNetConfig net_config);

  /// Routes by FNV hash of `routing_key`.
  Status AppendRouted(const std::string& routing_key, const Bytes& payload,
                      SimTime timestamp);
  /// OrderingService::Append routes by hashing the payload itself.
  Status Append(const Bytes& payload, SimTime timestamp) override;

  /// Shard 0's replica-0 ledger (use Shard(i) for the rest).
  const ledger::LedgerDb& Ledger() const override {
    return shards_[0]->Ledger();
  }
  uint64_t CommittedCount() const override;

  size_t num_shards() const { return shards_.size(); }
  PbftOrdering& Shard(size_t i) { return *shards_[i]; }

  /// The simulated time the slowest shard has reached — the wall-clock
  /// analogue for aggregate-throughput accounting.
  SimTime MaxShardTime() const;

 private:
  std::vector<std::unique_ptr<PbftOrdering>> shards_;
};

/// Raft-replicated ordering (crash-fault baseline).
class RaftOrdering : public OrderingService {
 public:
  RaftOrdering(size_t num_replicas, net::SimNetConfig net_config);

  Status Append(const Bytes& payload, SimTime timestamp) override;
  const ledger::LedgerDb& Ledger() const override { return ledgers_[0]; }
  uint64_t CommittedCount() const override { return committed_; }

  net::SimNetwork& network() { return *net_; }
  const ledger::LedgerDb& ReplicaLedger(size_t i) const { return ledgers_[i]; }

 private:
  std::unique_ptr<net::SimNetwork> net_;
  std::unique_ptr<consensus::RaftCluster> cluster_;
  std::vector<ledger::LedgerDb> ledgers_;
  uint64_t committed_ = 0;
  obs::Histogram* commit_latency_us_;  // Sim-time submit -> replica-0 commit.
};

}  // namespace prever::core

#endif  // PREVER_CORE_ORDERING_H_
