#ifndef PREVER_CORE_ORDERING_H_
#define PREVER_CORE_ORDERING_H_

#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "consensus/pbft.h"
#include "consensus/raft.h"
#include "ledger/ledger_db.h"
#include "net/sim_net.h"
#include "obs/registry.h"
#include "obs/tracing.h"

namespace prever::core {

/// Knobs of the pipelined group-commit window used by the consensus-backed
/// ordering services (see DESIGN.md "Pipelined ordering"). An open batch is
/// closed when it holds `max_batch` payloads or `max_delay` sim-time after
/// its first payload, whichever comes first; up to `max_inflight` closed
/// batches run consensus concurrently.
struct OrderingPipelineConfig {
  size_t max_batch = 64;
  SimTime max_delay = 2 * kMillisecond;
  size_t max_inflight = 4;
  /// Flush gives up (Unavailable) after this much sim-time without full
  /// commitment — liveness bugs surface as errors instead of hangs.
  SimTime flush_timeout = 60 * kSecond;
  /// Flush re-submits not-yet-committed batches at this period, recovering
  /// envelopes lost to crashes, drops, or leader changes (commit-side dedup
  /// makes re-submission idempotent).
  SimTime retry_interval = 500 * kMillisecond;
};

/// Recovery knobs for the consensus-backed ordering services (DESIGN.md
/// "Crash recovery & state transfer").
struct OrderingRecoveryConfig {
  /// PBFT stable-checkpoint interval (executions between checkpoints);
  /// 0 disables checkpointing and message-log GC.
  uint64_t checkpoint_interval = 0;
  /// PBFT fetch-state path for restarted/lagging replicas.
  bool enable_state_transfer = false;
};

/// Ledger timestamps for batch envelopes encode (consensus position,
/// intra-batch index) so they are deterministic across replicas and
/// collision-free: the low `kBatchStampIndexBits` bits hold the index, the
/// rest the position. 2^24 bounds the batch size; 40 bits remain for
/// consensus positions (~10^12 instances).
inline constexpr uint32_t kBatchStampIndexBits = 24;
inline constexpr size_t kMaxOrderingBatch = size_t{1} << kBatchStampIndexBits;

inline constexpr SimTime BatchEntryStamp(uint64_t position, uint32_t index) {
  return (position << kBatchStampIndexBits) | index;
}

/// How verified updates reach the immutable store (§4 RC4): a centralized
/// ledger database for the single-manager setting, or consensus-replicated
/// ledgers (PBFT for mutually distrustful managers, Raft as the §6 CFT
/// comparator). Engines order through this interface and stay agnostic.
class OrderingService {
 public:
  /// Completion handle from SubmitAsync: the payload's zero-based submission
  /// index. A ticket is committed once CommittedCount() exceeds it (after a
  /// successful Flush, every issued ticket is).
  using Ticket = uint64_t;

  virtual ~OrderingService() = default;

  /// Durably appends `payload`; returns only after the payload is committed
  /// on a quorum (consensus impls drive the simulated network to completion).
  virtual Status Append(const Bytes& payload, SimTime timestamp) = 0;

  /// Asynchronous window: enqueues `payload` for ordering and returns
  /// immediately with its ticket. Commitment happens as the caller (or a
  /// later blocking call) drives the network; call Flush() to wait for every
  /// outstanding ticket. The base implementation degrades to the blocking
  /// Append for services without a pipeline.
  virtual Result<Ticket> SubmitAsync(const Bytes& payload, SimTime timestamp);

  /// Blocks until every ticket issued so far is committed.
  virtual Status Flush();

  /// A ledger reflecting the committed order (for consensus impls, the
  /// first correct replica's ledger).
  virtual const ledger::LedgerDb& Ledger() const = 0;

  /// Committed entries so far.
  virtual uint64_t CommittedCount() const = 0;
};

/// Adaptive batcher + in-flight window shared by the consensus-backed
/// ordering services. Payloads accumulate in an open batch; closed batches
/// are sealed into batch envelopes ([u64 batch id][u32 count][payloads]) and
/// handed to `submit` while fewer than `max_inflight` envelopes await
/// commitment. The owner reports commit progress via OnProgress, which
/// retires completed envelopes (recording per-payload commit latency) and
/// submits queued ones — so the window refills from inside the event loop,
/// not just from Flush.
class GroupCommitPipeline {
 public:
  /// `submit` hands one sealed envelope to consensus; a failure (e.g. no
  /// Raft leader) leaves the batch queued for a later retry.
  using SubmitFn = std::function<Status(const Bytes& envelope)>;

  GroupCommitPipeline(net::SimNetwork* net, OrderingPipelineConfig config,
                      const std::string& proto_label, SubmitFn submit);

  /// Adds one payload to the open batch; may seal and submit. Returns the
  /// payload's ticket.
  OrderingService::Ticket Enqueue(const Bytes& payload);

  /// Seals `payloads` as ONE envelope regardless of `max_batch` (the
  /// explicit AppendBatch path), after first sealing any open batch so
  /// submission order is preserved. Size must be < kMaxOrderingBatch.
  OrderingService::Ticket EnqueueSealed(const std::vector<Bytes>& payloads);

  /// Seals the open batch (no-op when empty) and submits as the window
  /// allows.
  void CloseOpenBatch();

  /// Commit progress: `committed` is the total payloads the owner has
  /// applied. Retires fully committed envelopes and refills the window.
  void OnProgress(uint64_t committed);

  /// Re-submits every submitted-but-uncommitted envelope (fault recovery;
  /// the consensus layers dedup), then refills the window.
  void ResubmitUncommitted();

  /// Tickets issued so far == payloads a full Flush must see committed.
  uint64_t TicketCount() const { return next_ticket_; }

  const OrderingPipelineConfig& config() const { return config_; }

  /// Causal context of a sealed-but-unretired batch (null if the batch is
  /// unknown, already retired, or its trace unsampled). The owner's commit
  /// callback uses this to parent the replica-0 ledger-append span.
  obs::TraceContext ContextForBatch(uint64_t batch_id) const;

 private:
  struct Batch {
    Bytes envelope;
    uint64_t batch_id = 0;    ///< Envelope id (first u64 of the encoding).
    uint64_t end_ticket = 0;  ///< Cumulative payload count through this batch.
    std::vector<SimTime> submit_times;  ///< Enqueue sim-time per payload.
    /// Consensus span for the envelope: child of the first sampled
    /// payload's queue-wait span, opened at seal, closed at retirement.
    obs::TraceContext trace;
  };

  void SealOpen();
  void Seal(const std::vector<Bytes>& payloads,
            const std::vector<SimTime>& times,
            const std::vector<obs::TraceContext>& payload_traces);
  void PumpSubmissions();

  net::SimNetwork* net_;
  OrderingPipelineConfig config_;
  SubmitFn submit_;
  uint64_t next_ticket_ = 0;
  uint64_t sealed_tickets_ = 0;  // Payloads sealed so far (end_ticket source).
  uint64_t batch_counter_ = 0;  // Makes identical batches distinct commands.
  uint64_t open_epoch_ = 0;     // Invalidates stale max_delay close timers.
  std::vector<Bytes> open_payloads_;
  std::vector<SimTime> open_times_;
  std::vector<obs::TraceContext> open_traces_;  // Queue-wait span per payload.
  std::deque<Batch> queued_;    // Sealed, awaiting a window slot.
  std::deque<Batch> inflight_;  // Submitted, awaiting commitment.
  obs::Histogram* batch_size_;      // Payloads per sealed envelope.
  obs::Histogram* inflight_depth_;  // Window occupancy after each submit.
  obs::Histogram* commit_latency_us_;  // Sim-time enqueue -> commit.
};

/// Centralized ledger database ordering (Amazon QLDB / LedgerDB style).
class CentralizedOrdering : public OrderingService {
 public:
  CentralizedOrdering() = default;

  Status Append(const Bytes& payload, SimTime timestamp) override;
  const ledger::LedgerDb& Ledger() const override { return ledger_; }
  uint64_t CommittedCount() const override { return ledger_.size(); }

  ledger::LedgerDb& MutableLedger() { return ledger_; }

 private:
  ledger::LedgerDb ledger_;
};

/// PBFT-replicated ordering: each replica maintains its own ledger; Append
/// submits to the cluster and drains the simulated network until a quorum
/// has executed the command. Payloads travel in batch envelopes, so one
/// consensus instance can carry many updates (the StreamChain/FastFabric
/// batching lever §4 alludes to for Fabric's overhead), and SubmitAsync
/// keeps up to `max_inflight` instances running the three phases at once.
class PbftOrdering : public OrderingService {
 public:
  /// Called after a commit event appends to one replica's ledger, with the
  /// consensus position, the batch id, and the canonical encodings of the
  /// entries just appended — everything a durable commit journal needs.
  using CommitObserver =
      std::function<void(size_t replica, uint64_t position, uint64_t batch_id,
                         const std::vector<Bytes>& entries)>;

  /// `proto_label` tags this cluster's pipeline histograms in the default
  /// registry (sharded deployments use "pbft-sharded").
  PbftOrdering(size_t num_replicas, net::SimNetConfig net_config,
               const std::string& proto_label = "pbft",
               OrderingPipelineConfig pipeline = OrderingPipelineConfig(),
               OrderingRecoveryConfig recovery = OrderingRecoveryConfig());

  Status Append(const Bytes& payload, SimTime timestamp) override;
  /// Orders a whole batch through ONE consensus instance; the replica
  /// ledgers still record one entry per payload.
  Status AppendBatch(const std::vector<Bytes>& payloads, SimTime timestamp);

  Result<Ticket> SubmitAsync(const Bytes& payload, SimTime timestamp) override;
  Status Flush() override;

  const ledger::LedgerDb& Ledger() const override { return ledgers_[0]; }
  uint64_t CommittedCount() const override { return committed_; }

  net::SimNetwork& network() { return *net_; }
  const net::SimNetwork& network() const { return *net_; }
  consensus::PbftCluster& cluster() { return *cluster_; }
  const ledger::LedgerDb& ReplicaLedger(size_t i) const { return ledgers_[i]; }
  size_t num_replicas() const { return ledgers_.size(); }

  void SetReplicaCommitObserver(CommitObserver observer) {
    commit_observer_ = std::move(observer);
  }

  /// Application state for checkpoints/state transfer: the replica's ledger
  /// plus its applied watermark ([u64 applied_seq][u64 n][entries...]);
  /// deterministic across replicas at equal execution points.
  Bytes EncodeReplicaState(size_t i) const;
  /// Installs an EncodeReplicaState blob (PBFT state-transfer landing).
  Status RestoreReplicaState(size_t i, const Bytes& blob);
  /// Crash-recovery restore from durable state: replaces replica i's ledger
  /// and watermark (the caller then drives
  /// cluster().replica(i).Restart(...)).
  Status RestoreReplica(size_t i, ledger::LedgerDb ledger,
                        uint64_t applied_seq);
  uint64_t replica_applied_seq(size_t i) const { return applied_seq_[i]; }

 private:
  std::unique_ptr<net::SimNetwork> net_;
  std::unique_ptr<consensus::PbftCluster> cluster_;
  std::vector<ledger::LedgerDb> ledgers_;
  uint64_t committed_ = 0;
  /// Commit events at or below this watermark are already reflected in the
  /// replica's (restored) ledger and must not re-append.
  std::vector<uint64_t> applied_seq_;
  CommitObserver commit_observer_;
  std::unique_ptr<GroupCommitPipeline> pipeline_;
};

/// SharPer/Qanaat-style sharded ordering (§4 RC4: "Qanaat further provides
/// scalability by partitioning data into data shards"): k independent PBFT
/// clusters, each ordering the updates routed to it by key. Shards progress
/// in parallel (independent simulated networks), so aggregate throughput
/// scales with the shard count for single-shard updates. Cross-shard
/// transactions are out of scope (they need SharPer's cross-cluster
/// protocol; see DESIGN.md §6).
class ShardedPbftOrdering : public OrderingService {
 public:
  ShardedPbftOrdering(size_t num_shards, size_t replicas_per_shard,
                      net::SimNetConfig net_config,
                      OrderingPipelineConfig pipeline =
                          OrderingPipelineConfig());

  /// Routes by FNV hash of `routing_key`.
  Status AppendRouted(const std::string& routing_key, const Bytes& payload,
                      SimTime timestamp);
  /// OrderingService::Append routes by hashing the payload itself.
  Status Append(const Bytes& payload, SimTime timestamp) override;

  /// Async window across shards: routes like AppendRouted but through the
  /// target shard's pipeline. Flush drains every shard.
  Result<Ticket> SubmitRoutedAsync(const std::string& routing_key,
                                   const Bytes& payload, SimTime timestamp);
  Result<Ticket> SubmitAsync(const Bytes& payload, SimTime timestamp) override;
  Status Flush() override;

  /// Shard 0's replica-0 ledger (use Shard(i) for the rest).
  const ledger::LedgerDb& Ledger() const override {
    return shards_[0]->Ledger();
  }
  uint64_t CommittedCount() const override;

  size_t num_shards() const { return shards_.size(); }
  PbftOrdering& Shard(size_t i) { return *shards_[i]; }

  /// The simulated time the slowest shard has reached — the wall-clock
  /// analogue for aggregate-throughput accounting.
  SimTime MaxShardTime() const;

 private:
  size_t ShardOf(const std::string& routing_key) const;

  std::vector<std::unique_ptr<PbftOrdering>> shards_;
  uint64_t next_ticket_ = 0;
};

/// Raft-replicated ordering (crash-fault baseline).
class RaftOrdering : public OrderingService {
 public:
  /// Same contract as PbftOrdering::CommitObserver: (replica, log index,
  /// batch id, encoded ledger entries appended by this apply).
  using CommitObserver =
      std::function<void(size_t replica, uint64_t position, uint64_t batch_id,
                         const std::vector<Bytes>& entries)>;

  RaftOrdering(size_t num_replicas, net::SimNetConfig net_config,
               OrderingPipelineConfig pipeline = OrderingPipelineConfig());

  Status Append(const Bytes& payload, SimTime timestamp) override;
  /// One consensus instance (log entry) for the whole batch.
  Status AppendBatch(const std::vector<Bytes>& payloads, SimTime timestamp);

  Result<Ticket> SubmitAsync(const Bytes& payload, SimTime timestamp) override;
  Status Flush() override;

  const ledger::LedgerDb& Ledger() const override { return ledgers_[0]; }
  uint64_t CommittedCount() const override { return committed_; }

  net::SimNetwork& network() { return *net_; }
  const net::SimNetwork& network() const { return *net_; }
  consensus::RaftCluster& cluster() { return *cluster_; }
  const ledger::LedgerDb& ReplicaLedger(size_t i) const { return ledgers_[i]; }
  size_t num_replicas() const { return ledgers_.size(); }

  void SetReplicaCommitObserver(CommitObserver observer) {
    commit_observer_ = std::move(observer);
  }

  /// Self-contained replica state for Raft snapshots ([u64 applied floor]
  /// [u64 n_ids][ids...][u64 n][entries...]): handed to CompactTo as the
  /// snapshot blob and installed on followers via InstallSnapshot.
  Bytes EncodeReplicaState(size_t i) const;
  /// Installs an EncodeReplicaState blob (InstallSnapshot landing; also the
  /// crash-recovery restore primitive for full-image restores).
  Status RestoreReplicaState(size_t i, const Bytes& blob);
  /// Crash-recovery restore from checkpoint + journal: replaces replica i's
  /// ledger, applied floor, and batch-id dedup set, then rejoins the replica
  /// through RaftReplica::Recover (re-applying the committed suffix).
  Status RestoreReplica(size_t i, ledger::LedgerDb ledger,
                        uint64_t applied_floor,
                        const std::vector<uint64_t>& batch_ids);
  uint64_t replica_applied_floor(size_t i) const { return applied_floor_[i]; }

 private:
  std::unique_ptr<net::SimNetwork> net_;
  std::unique_ptr<consensus::RaftCluster> cluster_;
  std::vector<ledger::LedgerDb> ledgers_;
  uint64_t committed_ = 0;
  /// Batch ids applied per replica: Raft has no digest-level dedup, so the
  /// apply callback must make Flush's re-submissions idempotent itself.
  std::vector<std::set<uint64_t>> applied_batches_;
  /// Highest log index each replica has had delivered (ledger-reflected).
  std::vector<uint64_t> applied_floor_;
  CommitObserver commit_observer_;
  std::unique_ptr<GroupCommitPipeline> pipeline_;
};

}  // namespace prever::core

#endif  // PREVER_CORE_ORDERING_H_
