#ifndef PREVER_CORE_PARTICIPANT_H_
#define PREVER_CORE_PARTICIPANT_H_

#include <map>
#include <set>
#include <string>

#include "common/status.h"

namespace prever::core {

/// Participant roles of the PReVer model (§3.1). A single entity may hold
/// several roles — e.g. a worker is both data producer and data owner in
/// the crowdworking instantiation.
enum class Role : uint8_t {
  kDataProducer = 0,  ///< Produces updates.
  kDataOwner = 1,     ///< Owns data; may outsource management.
  kDataManager = 2,   ///< Stores/manages data; verifies & applies updates.
  kAuthority = 3,     ///< Defines constraints (internal) / regulations
                      ///< (external).
};

/// Adversarial stance (§3.3 threat model). The stance is per participant
/// and per instantiation; engines document what they tolerate.
enum class TrustLevel : uint8_t {
  kHonest = 0,
  kHonestButCurious = 1,  ///< Follows the protocol, infers what it can.
  kCovert = 2,            ///< Cheats only if unlikely to be detected.
  kMalicious = 3,         ///< Deviates arbitrarily.
};

const char* RoleName(Role role);
const char* TrustLevelName(TrustLevel level);

struct Participant {
  std::string id;
  std::set<Role> roles;
  TrustLevel trust = TrustLevel::kHonestButCurious;

  bool HasRole(Role role) const { return roles.count(role) > 0; }
};

/// Registry of the participants in a PReVer deployment.
class ParticipantRegistry {
 public:
  Status Add(Participant participant);
  Result<const Participant*> Find(const std::string& id) const;
  bool HasRole(const std::string& id, Role role) const;
  size_t size() const { return participants_.size(); }

 private:
  std::map<std::string, Participant> participants_;
};

}  // namespace prever::core

#endif  // PREVER_CORE_PARTICIPANT_H_
