#include "core/regulation_forms.h"

namespace prever::core {

Result<const std::vector<constraint::LinearBoundForm>*>
RegulationForms::ForConstraint(size_t index) {
  if (!ready_ || revision_ != regulations_->revision()) {
    forms_.clear();
    forms_.reserve(regulations_->size());
    for (const constraint::Constraint& c : regulations_->constraints()) {
      forms_.push_back(constraint::ExtractLinearConjunction(*c.expr));
    }
    revision_ = regulations_->revision();
    ready_ = true;
  }
  if (index >= forms_.size()) {
    return Status::InvalidArgument("regulation index out of range");
  }
  if (!forms_[index].ok()) return forms_[index].status();
  return &*forms_[index];
}

}  // namespace prever::core
