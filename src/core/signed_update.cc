#include "core/signed_update.h"

namespace prever::core {

Status ProducerKeyDirectory::Register(const std::string& producer,
                                      crypto::RsaPublicKey key) {
  auto [it, inserted] = keys_.emplace(producer, std::move(key));
  if (!inserted) {
    return Status::AlreadyExists("producer '" + producer +
                                 "' already has a key");
  }
  return Status::Ok();
}

Result<const crypto::RsaPublicKey*> ProducerKeyDirectory::Find(
    const std::string& producer) const {
  auto it = keys_.find(producer);
  if (it == keys_.end()) {
    return Status::NotFound("no key registered for '" + producer + "'");
  }
  return &it->second;
}

SignedUpdate SignUpdate(Update update, const crypto::RsaKeyPair& key) {
  SignedUpdate out;
  out.signature = crypto::RsaSign(key, update.Encode());
  out.update = std::move(update);
  return out;
}

Status VerifyUpdateSignature(const SignedUpdate& signed_update,
                             const ProducerKeyDirectory& directory) {
  auto key = directory.Find(signed_update.update.producer);
  if (!key.ok()) {
    return Status::PermissionDenied("unknown producer '" +
                                    signed_update.update.producer + "'");
  }
  if (!crypto::RsaVerify(**key, signed_update.update.Encode(),
                         signed_update.signature)) {
    return Status::IntegrityViolation(
        "update signature does not verify for producer '" +
        signed_update.update.producer + "'");
  }
  return Status::Ok();
}

Status AuthenticatingEngine::SubmitSigned(const SignedUpdate& signed_update) {
  Status authenticated = VerifyUpdateSignature(signed_update, *directory_);
  if (!authenticated.ok()) {
    ++rejected_signatures_;
    return authenticated;
  }
  return inner_->SubmitUpdate(signed_update.update);
}

Status AuthenticatingEngine::SubmitUpdate(const Update& update) {
  (void)update;
  ++rejected_signatures_;
  return Status::PermissionDenied(
      "this deployment requires signed updates; use SubmitSigned");
}

}  // namespace prever::core
