#ifndef PREVER_CORE_PATTERN_SHAPER_H_
#define PREVER_CORE_PATTERN_SHAPER_H_

#include <deque>
#include <functional>

#include "core/engine.h"

namespace prever::core {

/// Update-pattern shaping (§4 cites DP-Sync [62]: private engines still
/// "disclos[e] update patterns" — WHEN updates happen leaks information
/// even when their contents are hidden).
///
/// The shaper decouples arrival time from observable submission time: real
/// updates queue; on every tick of a fixed cadence the shaper submits
/// exactly one record — the oldest queued real update, or a dummy when the
/// queue is empty. An observer of the inner engine (or its ledger) sees a
/// perfectly regular stream and learns nothing about the true arrival
/// process beyond its long-run average.
///
/// The costs are the two axes DP-Sync trades: added latency (queueing until
/// the next tick) and dummy overhead (ticks with no real work). The
/// counters expose both so E8 can plot the trade-off.
class UpdatePatternShaper {
 public:
  /// `dummy_factory` builds an innocuous update for a tick with no real
  /// traffic (e.g. a no-op upsert of a reserved row). It must be accepted
  /// by the inner engine.
  using DummyFactory = std::function<Update(SimTime tick_time)>;

  UpdatePatternShaper(UpdateEngine* inner, SimTime interval,
                      DummyFactory dummy_factory)
      : inner_(inner),
        interval_(interval),
        dummy_factory_(std::move(dummy_factory)) {}

  /// Queues a real update (arrival time = update.timestamp).
  void Enqueue(Update update) { queue_.push_back(std::move(update)); }

  size_t queued() const { return queue_.size(); }

  /// Advances the cadence to `now`, emitting one submission per elapsed
  /// tick. Returns the number of ticks fired.
  size_t AdvanceTo(SimTime now);

  SimTime interval() const { return interval_; }
  uint64_t real_submitted() const { return real_submitted_; }
  uint64_t dummies_submitted() const { return dummies_submitted_; }
  /// Total queueing delay added to real updates (latency cost).
  SimTime total_added_latency() const { return total_added_latency_; }

 private:
  UpdateEngine* inner_;
  SimTime interval_;
  DummyFactory dummy_factory_;
  std::deque<Update> queue_;
  SimTime next_tick_ = 0;
  uint64_t real_submitted_ = 0;
  uint64_t dummies_submitted_ = 0;
  SimTime total_added_latency_ = 0;
};

}  // namespace prever::core

#endif  // PREVER_CORE_PATTERN_SHAPER_H_
