#ifndef PREVER_CORE_UPDATE_H_
#define PREVER_CORE_UPDATE_H_

#include <string>

#include "common/sim_clock.h"
#include "common/status.h"
#include "constraint/eval.h"
#include "storage/database.h"

namespace prever::core {

/// Privacy label of a model element (data / update / constraint) in a given
/// instantiation — the three axes of Figure 1's application matrix.
enum class Privacy : uint8_t { kPublic = 0, kPrivate = 1 };

/// The unit of change in PReVer (§3.2): produced by a data producer,
/// verified against constraints/regulations, then incorporated into the
/// database and recorded on the ledger (Fig. 2 steps 1–3).
struct Update {
  std::string id;          ///< Globally unique (producer-chosen).
  std::string producer;    ///< Data producer's participant id.
  SimTime timestamp = 0;   ///< Production time (drives WINDOW regulations).
  /// Named fields visible to constraints as `update.<name>`.
  constraint::UpdateFields fields;
  /// The state change to apply once verified.
  storage::Mutation mutation;

  /// Canonical encoding: hashed for ledger entries and consensus payloads.
  Bytes Encode() const;
  static Result<Update> Decode(const Bytes& data);
};

/// Outcome statistics every engine reports (used by the benches).
struct EngineStats {
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected_constraint = 0;  ///< Failed verification (step 2).
  uint64_t rejected_error = 0;       ///< Malformed / apply failures.
};

}  // namespace prever::core

#endif  // PREVER_CORE_UPDATE_H_
