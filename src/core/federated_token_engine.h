#ifndef PREVER_CORE_FEDERATED_TOKEN_ENGINE_H_
#define PREVER_CORE_FEDERATED_TOKEN_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/engine_metrics.h"
#include "core/federated_mpc_engine.h"  // FederatedPlatform.
#include "core/ordering.h"
#include "token/token.h"

namespace prever::core {

/// RC2, centralized path — the Separ instantiation (§5): a trusted external
/// authority encodes the regulation as a per-participant budget of
/// single-use pseudonymous tokens (blind-signed, hence unlinkable), and the
/// mutually distrustful platforms cooperate only through a shared spent-
/// token ledger ordered by this engine's ordering service.
///
/// An update consuming `cost` units (e.g. hours) must present `cost` fresh
/// tokens. Platforms verify signatures and double-spends; they never learn
/// the worker's totals at other platforms. The expressiveness limit §4
/// notes — only COUNT/budget-style regulations — is inherent and surfaced
/// by the engine's interface: no constraint catalog, just the budget.
class FederatedTokenEngine : public UpdateEngine {
 public:
  /// `cost_field`: update field holding how many tokens the update costs.
  FederatedTokenEngine(std::vector<FederatedPlatform*> platforms,
                       token::TokenAuthority* authority,
                       OrderingService* ordering, std::string cost_field);

  /// Producer-side: a wallet per producer, lazily created.
  token::TokenWallet& WalletOf(const std::string& producer);

  /// Submits via a platform, paying with tokens drawn from the producer's
  /// wallet (withdrawing on demand from the authority). PermissionDenied
  /// when the period budget cannot cover the cost.
  Status SubmitVia(size_t platform_index, const Update& update);
  Status SubmitUpdate(const Update& update) override {
    return SubmitVia(0, update);
  }

  /// Batch submission through one platform: every update is judged
  /// individually (a rejected update does not abort the batch; the first
  /// non-OK status is returned), and the spent-token ledger appends ride the
  /// ordering pipeline's async window with a single Flush at the end —
  /// group commit across the whole batch.
  Status SubmitBatchVia(size_t platform_index,
                        const std::vector<Update>& updates);

  EngineStats stats() const override { return metrics_.Snapshot(); }
  const char* name() const override { return "federated-token-rc2"; }

  uint64_t tokens_spent() const { return tokens_spent_; }

  /// Rebuilds the shared spent-serial index from the ordering ledger — the
  /// restart path: the committed payloads ARE the burned serials, so any
  /// platform can reconstruct the double-spend filter independently after a
  /// crash (the same property TokenVerifier::SyncFromLedger documents).
  Status SyncSpentFromLedger();

  /// Optional worker pool (not owned; may be null): token signatures within
  /// one update are independent RSA verifications, checked concurrently
  /// when a pool is set. Wallet draws and ledger writes stay serial.
  void set_thread_pool(common::ThreadPool* pool) { pool_ = pool; }

 private:
  /// Shared implementation: with `async_ledger` the spent-serial appends go
  /// through SubmitAsync and the caller is responsible for Flush.
  Status SubmitViaInternal(size_t platform_index, const Update& update,
                           bool async_ledger);

  std::vector<FederatedPlatform*> platforms_;
  token::TokenAuthority* authority_;
  OrderingService* ordering_;
  std::string cost_field_;
  common::ThreadPool* pool_ = nullptr;
  /// Shared spent-serial set, rebuilt from the ordering ledger as needed.
  std::map<std::string, std::unique_ptr<token::TokenWallet>> wallets_;
  std::set<Bytes> spent_;
  uint64_t next_wallet_seed_ = 1000;
  uint64_t tokens_spent_ = 0;
  EngineMetrics metrics_{"federated-token-rc2"};
};

}  // namespace prever::core

#endif  // PREVER_CORE_FEDERATED_TOKEN_ENGINE_H_
