#include "core/plaintext_engine.h"

#include "obs/tracing.h"

namespace prever::core {

PlaintextEngine::PlaintextEngine(storage::Database* db,
                                 const constraint::ConstraintCatalog* catalog,
                                 OrderingService* ordering)
    : db_(db), catalog_(catalog), ordering_(ordering), verifier_(catalog, db) {}

Status PlaintextEngine::SubmitUpdate(const Update& update) {
  metrics_.OnSubmit();
  PREVER_TRACE_SPAN(metrics_.submit_ns());
  // Trace root: every causal span this transaction produces — phase spans
  // here, queue-wait/consensus/ledger spans downstream — descends from it.
  PREVER_CAUSAL_ROOT_SPAN(causal_root, obs::TraceStage::kSubmit, 0);
  // Step 2 (Fig. 2): verify against every constraint and regulation.
  constraint::EvalContext ctx{db_, &update.fields, update.timestamp};
  Status verified;
  {
    PREVER_TRACE_SPAN(metrics_.verify_ns());
    PREVER_CAUSAL_SPAN(causal_verify, obs::TraceStage::kVerify);
    verified = verifier_.VerifyAll(ctx);
  }
  if (!verified.ok()) return metrics_.Finish(verified);
  // Step 3: incorporate into the database and record on the immutable
  // integrity layer (RC4).
  PREVER_TRACE_SPAN(metrics_.ledger_ns());
  PREVER_CAUSAL_SPAN(causal_ledger, obs::TraceStage::kLedgerPhase);
  Status applied = db_->Apply(update.mutation);
  if (!applied.ok()) return metrics_.Finish(applied);
  Status ordered = ordering_->Append(update.Encode(), update.timestamp);
  return metrics_.Finish(ordered);
}

}  // namespace prever::core
