#include "core/plaintext_engine.h"

namespace prever::core {

PlaintextEngine::PlaintextEngine(storage::Database* db,
                                 const constraint::ConstraintCatalog* catalog,
                                 OrderingService* ordering)
    : db_(db), catalog_(catalog), ordering_(ordering) {}

Status PlaintextEngine::SubmitUpdate(const Update& update) {
  ++stats_.submitted;
  // Step 2 (Fig. 2): verify against every constraint and regulation.
  constraint::EvalContext ctx{db_, &update.fields, update.timestamp};
  Status verified = catalog_->CheckAll(ctx);
  if (!verified.ok()) {
    if (verified.code() == StatusCode::kConstraintViolation) {
      ++stats_.rejected_constraint;
    } else {
      ++stats_.rejected_error;
    }
    return verified;
  }
  // Step 3: incorporate into the database…
  Status applied = db_->Apply(update.mutation);
  if (!applied.ok()) {
    ++stats_.rejected_error;
    return applied;
  }
  // …and record on the immutable integrity layer (RC4).
  Status ordered = ordering_->Append(update.Encode(), update.timestamp);
  if (!ordered.ok()) {
    ++stats_.rejected_error;
    return ordered;
  }
  ++stats_.accepted;
  return Status::Ok();
}

}  // namespace prever::core
