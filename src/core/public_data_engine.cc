#include "core/public_data_engine.h"

#include "obs/tracing.h"

namespace prever::core {

using crypto::BigInt;

PublicDataEngine::PublicDataEngine(
    storage::Database* db, const constraint::ConstraintCatalog* public_catalog,
    std::vector<AttestationRequirement> requirements,
    OrderingService* ordering, const crypto::PedersenParams& pedersen)
    : db_(db),
      public_catalog_(public_catalog),
      requirements_(std::move(requirements)),
      ordering_(ordering),
      pedersen_(&pedersen),
      verifier_(public_catalog, db) {}

Result<PrivateAttestation> PublicDataEngine::Attest(
    const AttestationRequirement& requirement, int64_t private_value,
    crypto::Drbg& drbg) {
  if (private_value < 0) {
    return Status::InvalidArgument("attested values must be non-negative");
  }
  PrivateAttestation out;
  out.field = requirement.field;
  BigInt v(private_value);
  BigInt r = drbg.RandomBelow(pedersen_->q);
  out.commitment = crypto::PedersenCommit(*pedersen_, v, r);
  Result<crypto::RangeProof> proof =
      requirement.direction == constraint::BoundDirection::kLower
          ? crypto::ProveLowerBound(*pedersen_, out.commitment, v, r,
                                    BigInt(requirement.bound),
                                    requirement.slack_bits, drbg)
          : crypto::ProveUpperBound(*pedersen_, out.commitment, v, r,
                                    BigInt(requirement.bound),
                                    requirement.slack_bits, drbg);
  if (!proof.ok()) {
    return Status::ConstraintViolation(
        "private value cannot satisfy requirement on '" + requirement.field +
        "'");
  }
  out.proof = std::move(*proof);
  return out;
}

Status PublicDataEngine::Submit(const Submission& submission) {
  metrics_.OnSubmit();
  PREVER_TRACE_SPAN(metrics_.submit_ns());
  PREVER_CAUSAL_ROOT_SPAN(causal_root, obs::TraceStage::kSubmit, 0);
  // (a) Public constraints over public data + public update fields.
  constraint::EvalContext ctx{db_, &submission.update.fields,
                              submission.update.timestamp};
  Status public_ok;
  {
    PREVER_TRACE_SPAN(metrics_.verify_ns());
    PREVER_CAUSAL_SPAN(causal_verify, obs::TraceStage::kVerify);
    public_ok = verifier_.VerifyAll(ctx);
  }
  if (!public_ok.ok()) return metrics_.Finish(public_ok);
  // (b) One valid attestation per private requirement.
  obs::ScopedSpan crypto_span(metrics_.crypto_ns());
  obs::TraceSpan causal_crypto(obs::TraceStage::kCrypto);
  for (const AttestationRequirement& req : requirements_) {
    const PrivateAttestation* found = nullptr;
    for (const PrivateAttestation& att : submission.attestations) {
      if (att.field == req.field) {
        found = &att;
        break;
      }
    }
    if (found == nullptr) {
      return metrics_.Finish(Status::ConstraintViolation(
          "missing attestation for '" + req.field + "'"));
    }
    bool proof_ok =
        req.direction == constraint::BoundDirection::kLower
            ? crypto::VerifyLowerBound(*pedersen_, found->commitment,
                                       found->proof, BigInt(req.bound),
                                       req.slack_bits)
            : crypto::VerifyUpperBound(*pedersen_, found->commitment,
                                       found->proof, BigInt(req.bound),
                                       req.slack_bits);
    if (!proof_ok) {
      return metrics_.Finish(Status::ConstraintViolation(
          "attestation proof for '" + req.field + "' does not verify"));
    }
  }
  crypto_span.End();
  causal_crypto.End();
  // Apply to the public database and ledger the (public) update together
  // with the attestation commitments, so auditors can re-verify later.
  PREVER_TRACE_SPAN(metrics_.ledger_ns());
  PREVER_CAUSAL_SPAN(causal_ledger, obs::TraceStage::kLedgerPhase);
  Status applied = db_->Apply(submission.update.mutation);
  if (!applied.ok()) return metrics_.Finish(applied);
  BinaryWriter w;
  w.WriteBytes(submission.update.Encode());
  w.WriteU32(static_cast<uint32_t>(submission.attestations.size()));
  for (const PrivateAttestation& att : submission.attestations) {
    w.WriteString(att.field);
    w.WriteBytes(att.commitment.c.ToBytes());
  }
  Status ordered = ordering_->Append(w.Take(), submission.update.timestamp);
  return metrics_.Finish(ordered);
}

Status PublicDataEngine::SubmitUpdate(const Update& update) {
  if (!requirements_.empty()) {
    metrics_.OnSubmit();
    return metrics_.Finish(Status::InvalidArgument(
        "engine has private requirements; use Submit with attestations"));
  }
  Submission s;
  s.update = update;
  return Submit(s);
}

Result<PublicDataEngine::PirSnapshot> PublicDataEngine::BuildPirSnapshot(
    const std::string& table, size_t record_size) const {
  PREVER_ASSIGN_OR_RETURN(const storage::Table* t, db_->GetTable(table));
  std::vector<Bytes> records;
  Status encode_error;
  t->Scan([&](const storage::Row& row) {
    BinaryWriter w;
    for (const storage::Value& v : row) v.EncodeTo(w);
    Bytes rec = w.Take();
    if (rec.size() > record_size) {
      encode_error = Status::InvalidArgument(
          "row does not fit in record_size; increase it");
      return false;
    }
    rec.resize(record_size, 0);
    records.push_back(std::move(rec));
    return true;
  });
  PREVER_RETURN_IF_ERROR(encode_error);
  PirSnapshot snapshot;
  snapshot.record_size = record_size;
  snapshot.server0 =
      std::make_unique<pir::XorPirServer>(records, record_size);
  snapshot.server1 =
      std::make_unique<pir::XorPirServer>(std::move(records), record_size);
  return snapshot;
}

}  // namespace prever::core
