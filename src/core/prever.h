#ifndef PREVER_CORE_PREVER_H_
#define PREVER_CORE_PREVER_H_

/// \file Umbrella header for the PReVer framework public API.
///
/// PReVer (EDBT 2022) is a universal framework for managing regulated
/// dynamic data in a privacy-preserving manner. This library provides one
/// working engine per research challenge of the paper:
///
///   RC1  EncryptedEngine       — untrusted manager over a single private
///                                database (Paillier + Pedersen + ZK).
///   RC2  FederatedMpcEngine    — decentralized federated regulation checks
///                                (secure multi-party comparison).
///   RC2  FederatedTokenEngine  — centralized token-based regulation
///                                enforcement (the Separ instantiation).
///   RC3  PublicDataEngine      — public data, private updates (ZK
///                                attestations + two-server PIR reads).
///   RC4  IntegrityAuditor      — verifiable ledgers/blockchains, audited
///                                by any participant.
///
/// plus PlaintextEngine as the non-private baseline §6 asks for, and
/// ordering services over a centralized ledger, PBFT, or Raft.

#include "core/auditor.h"
#include "core/demarcation_engine.h"
#include "core/dp_index.h"
#include "core/encrypted_engine.h"
#include "core/engine.h"
#include "core/federated_mpc_engine.h"
#include "core/federated_threshold_engine.h"
#include "core/federated_token_engine.h"
#include "core/ordering.h"
#include "core/participant.h"
#include "core/pattern_shaper.h"
#include "core/plaintext_engine.h"
#include "core/public_data_engine.h"
#include "core/signed_update.h"
#include "core/update.h"

#endif  // PREVER_CORE_PREVER_H_
