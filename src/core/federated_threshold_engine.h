#ifndef PREVER_CORE_FEDERATED_THRESHOLD_ENGINE_H_
#define PREVER_CORE_FEDERATED_THRESHOLD_ENGINE_H_

#include <memory>
#include <vector>

#include "constraint/constraint.h"
#include "constraint/linear.h"
#include "constraint/verifier.h"
#include "core/engine.h"
#include "core/engine_metrics.h"
#include "core/federated_mpc_engine.h"  // FederatedPlatform.
#include "core/ordering.h"
#include "core/regulation_forms.h"
#include "crypto/elgamal.h"

namespace prever::core {

/// RC2, dealer-free decentralized path — the direct answer to the Separ
/// shortcoming §5 names ("requires a centralized trusted third party
/// authority"): the platforms run a one-time distributed key generation
/// (threshold ElGamal, n-of-n); per regulation check, each platform
/// encrypts its private local aggregate under the JOINT key, the
/// ciphertexts are summed homomorphically, and all platforms jointly
/// decrypt the TOTAL.
///
/// Privacy compared to the MPC engine: no trusted dealer and no
/// correlated-randomness setup per check, but the *total* (not just the
/// compliance bit) is revealed to the platforms. That is the classic
/// secure-aggregation privacy level; DESIGN.md's engine table records the
/// trade — individual contributions stay hidden either way.
class FederatedThresholdEngine : public UpdateEngine {
 public:
  /// `programs` (optional) is a shared compiled-bytecode cache: pass the
  /// same cache to paired engines (or this engine's siblings) so each
  /// regulation aggregate compiles once across all of them.
  FederatedThresholdEngine(std::vector<FederatedPlatform*> platforms,
                           const constraint::ConstraintCatalog* regulations,
                           OrderingService* ordering,
                           const crypto::PedersenParams& params,
                           uint64_t seed,
                           constraint::ProgramCache* programs = nullptr);

  Status SubmitVia(size_t platform_index, const Update& update);
  Status SubmitUpdate(const Update& update) override {
    return SubmitVia(0, update);
  }

  /// Batch submission through one platform: updates are judged individually
  /// (first non-OK status returned, no abort), ledger appends ride the
  /// ordering pipeline's async window, and one Flush at the end waits for
  /// quorum on the whole batch.
  Status SubmitBatchVia(size_t platform_index,
                        const std::vector<Update>& updates);

  EngineStats stats() const override { return metrics_.Snapshot(); }
  const char* name() const override { return "federated-threshold-rc2"; }

  /// Joint decryptions performed (each reveals one aggregate total).
  uint64_t totals_opened() const { return totals_opened_; }

  /// Compiled-verification counters of platform `i`'s verifier (aggregate
  /// cache hit/delta/scan mix) — the differential harness asserts the
  /// incremental path stays engaged.
  constraint::CompiledVerifier::Stats verifier_stats(size_t i) const {
    return platform_verifiers_[i]->stats();
  }

 private:
  /// Checks regulation `index` of the catalog (forms precomputed).
  Status CheckRegulation(size_t index, size_t platform_index,
                         const Update& update);
  Status SubmitViaInternal(size_t platform_index, const Update& update,
                           bool async_ledger);

  std::vector<FederatedPlatform*> platforms_;
  const constraint::ConstraintCatalog* regulations_;
  OrderingService* ordering_;
  /// One compiled verifier per platform: internal-constraint verification
  /// plus incrementally cached local aggregates for the encrypted totals.
  std::vector<std::unique_ptr<constraint::CompiledVerifier>> platform_verifiers_;
  RegulationForms regulation_forms_;
  crypto::Drbg drbg_;
  crypto::ThresholdElGamal keys_;
  uint64_t totals_opened_ = 0;
  EngineMetrics metrics_{"federated-threshold-rc2"};
};

}  // namespace prever::core

#endif  // PREVER_CORE_FEDERATED_THRESHOLD_ENGINE_H_
