#ifndef PREVER_CORE_FEDERATED_MPC_ENGINE_H_
#define PREVER_CORE_FEDERATED_MPC_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "constraint/constraint.h"
#include "constraint/linear.h"
#include "constraint/verifier.h"
#include "core/engine.h"
#include "core/engine_metrics.h"
#include "core/ordering.h"
#include "core/regulation_forms.h"
#include "mpc/compare.h"
#include "storage/database.h"

namespace prever::core {

/// One federated platform (data manager) in the RC2 decentralized setting:
/// it holds its own private database (plaintext locally, invisible to the
/// other platforms) plus local internal constraints.
struct FederatedPlatform {
  std::string id;
  storage::Database db;
  constraint::ConstraintCatalog internal_constraints;
};

/// RC2, decentralized path: multiple mutually distrustful data managers
/// collectively verify a distributed regulation — e.g. FLSA's "total hours
/// across ALL platforms <= 40/week" — via secure multi-party computation,
/// without any platform revealing its local aggregate. The accepted update
/// executes on the submitting platform only; a content digest goes through
/// the ordering service so every platform can audit the global history.
///
/// Regulations must be in linear bound form (SUM/COUNT + update terms vs. a
/// constant); richer constraints are rejected with NotSupported — exactly
/// the expressiveness frontier §4 calls out for token/MPC mechanisms.
class FederatedMpcEngine : public UpdateEngine {
 public:
  /// `regulations` are the global (external-authority) constraints; each is
  /// compiled to linear bound form at construction. `platforms` must
  /// outlive the engine. `programs` (optional) is a shared compiled-bytecode
  /// cache — pass the same cache to paired engines so each regulation
  /// aggregate compiles once across all of them.
  FederatedMpcEngine(std::vector<FederatedPlatform*> platforms,
                     const constraint::ConstraintCatalog* regulations,
                     OrderingService* ordering, uint64_t dealer_seed,
                     constraint::ProgramCache* programs = nullptr);

  /// Validates that every regulation is in linear bound form.
  Status ValidateRegulations() const;

  /// Submits via platform `platform_index` (the manager the producer talks
  /// to). The base-class SubmitUpdate routes to platform 0.
  Status SubmitVia(size_t platform_index, const Update& update);
  Status SubmitUpdate(const Update& update) override {
    return SubmitVia(0, update);
  }

  EngineStats stats() const override { return metrics_.Snapshot(); }
  const char* name() const override { return "federated-mpc-rc2"; }

  const mpc::MpcTranscript& transcript() const { return transcript_; }

  /// Compiled-verification counters of platform `i`'s verifier (aggregate
  /// cache hit/delta/scan mix) — the differential harness asserts the
  /// incremental path stays engaged.
  constraint::CompiledVerifier::Stats verifier_stats(size_t i) const {
    return platform_verifiers_[i]->stats();
  }

 private:
  /// Checks regulation `index` of the catalog (forms precomputed).
  Status CheckRegulation(size_t index, size_t platform_index,
                         const Update& update);

  std::vector<FederatedPlatform*> platforms_;
  const constraint::ConstraintCatalog* regulations_;
  OrderingService* ordering_;
  /// One compiled verifier per platform: internal-constraint verification
  /// plus incrementally cached local aggregates for the MPC inputs.
  std::vector<std::unique_ptr<constraint::CompiledVerifier>> platform_verifiers_;
  RegulationForms regulation_forms_;
  Rng dealer_rng_;
  mpc::MpcTranscript transcript_;
  EngineMetrics metrics_{"federated-mpc-rc2"};
};

}  // namespace prever::core

#endif  // PREVER_CORE_FEDERATED_MPC_ENGINE_H_
