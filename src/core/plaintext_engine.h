#ifndef PREVER_CORE_PLAINTEXT_ENGINE_H_
#define PREVER_CORE_PLAINTEXT_ENGINE_H_

#include "constraint/constraint.h"
#include "constraint/verifier.h"
#include "core/engine.h"
#include "core/engine_metrics.h"
#include "core/ordering.h"
#include "storage/database.h"

namespace prever::core {

/// The non-private baseline (§6 asks every private solution to be compared
/// against it): the data manager sees everything — plaintext database,
/// plaintext updates, plaintext constraints. Full Fig. 2 pipeline: evaluate
/// every catalog constraint, apply the mutation, append the update to the
/// ordering/integrity layer.
class PlaintextEngine : public UpdateEngine {
 public:
  /// Non-owning pointers; all must outlive the engine.
  PlaintextEngine(storage::Database* db,
                  const constraint::ConstraintCatalog* catalog,
                  OrderingService* ordering);

  Status SubmitUpdate(const Update& update) override;
  EngineStats stats() const override { return metrics_.Snapshot(); }
  const char* name() const override { return "plaintext"; }

  const storage::Database& db() const { return *db_; }

  /// Compiled-verification counters (bytecode vs interpreter, cache hits).
  const constraint::CompiledVerifier& verifier() const { return verifier_; }

 private:
  storage::Database* db_;
  const constraint::ConstraintCatalog* catalog_;
  OrderingService* ordering_;
  constraint::CompiledVerifier verifier_;
  EngineMetrics metrics_{"plaintext"};
};

}  // namespace prever::core

#endif  // PREVER_CORE_PLAINTEXT_ENGINE_H_
