#include "core/federated_threshold_engine.h"

#include "obs/tracing.h"

#include "crypto/sha256.h"

namespace prever::core {

namespace {
// Aggregates PReVer regulates are small (hours, counts, cents-scale); the
// dlog recovery bound caps the scan.
constexpr int64_t kMaxAggregate = 1 << 20;
}  // namespace

FederatedThresholdEngine::FederatedThresholdEngine(
    std::vector<FederatedPlatform*> platforms,
    const constraint::ConstraintCatalog* regulations,
    OrderingService* ordering, const crypto::PedersenParams& params,
    uint64_t seed, constraint::ProgramCache* programs)
    : platforms_(std::move(platforms)),
      regulations_(regulations),
      ordering_(ordering),
      regulation_forms_(regulations),
      drbg_(seed),
      keys_(params, platforms_.size(), drbg_) {
  platform_verifiers_.reserve(platforms_.size());
  for (FederatedPlatform* p : platforms_) {
    platform_verifiers_.push_back(std::make_unique<constraint::CompiledVerifier>(
        &p->internal_constraints, &p->db, programs));
  }
}

Status FederatedThresholdEngine::CheckRegulation(size_t index,
                                                 size_t platform_index,
                                                 const Update& update) {
  const constraint::Constraint& regulation =
      regulations_->constraints()[index];
  PREVER_ASSIGN_OR_RETURN(const auto* forms,
                          regulation_forms_.ForConstraint(index));
  for (const constraint::LinearBoundForm& form : *forms) {
    // Each platform: local aggregate over its private database, plus the
    // incoming update's terms at the submitting platform.
    auto total_ct = keys_.Encrypt(0, drbg_);
    PREVER_RETURN_IF_ERROR(total_ct.status());
    for (size_t i = 0; i < platforms_.size(); ++i) {
      constraint::EvalContext ctx{&platforms_[i]->db, &update.fields,
                                  update.timestamp};
      PREVER_ASSIGN_OR_RETURN(
          int64_t local,
          platform_verifiers_[i]->EvaluateAggregate(*form.aggregate, ctx));
      if (i == platform_index) {
        for (const std::string& field : form.update_terms) {
          auto it = update.fields.find(field);
          if (it == update.fields.end()) {
            return Status::InvalidArgument("update lacks field '" + field +
                                           "'");
          }
          PREVER_ASSIGN_OR_RETURN(int64_t v, it->second.AsInt64());
          local += v;
        }
      }
      if (local < 0 || local > kMaxAggregate) {
        return Status::NotSupported(
            "local aggregate outside the threshold engine's domain");
      }
      // Platform i encrypts its contribution under the joint key and
      // publishes only the ciphertext.
      PREVER_ASSIGN_OR_RETURN(crypto::ElGamalCiphertext ct,
                              keys_.Encrypt(local, drbg_));
      *total_ct = crypto::ThresholdElGamal::Add(keys_.params(), *total_ct, ct);
    }
    // Joint decryption of the total: every platform contributes a partial.
    std::vector<crypto::BigInt> partials;
    partials.reserve(platforms_.size());
    for (size_t i = 0; i < platforms_.size(); ++i) {
      PREVER_ASSIGN_OR_RETURN(crypto::BigInt partial,
                              keys_.PartialDecrypt(i, *total_ct));
      partials.push_back(std::move(partial));
    }
    PREVER_ASSIGN_OR_RETURN(
        int64_t total,
        keys_.Combine(*total_ct, partials,
                      kMaxAggregate * static_cast<int64_t>(platforms_.size())));
    ++totals_opened_;

    bool satisfied = form.direction == constraint::BoundDirection::kUpper
                         ? total <= form.bound
                         : total >= form.bound;
    if (!satisfied) {
      return Status::ConstraintViolation("update violates regulation '" +
                                         regulation.name + "'");
    }
  }
  return Status::Ok();
}

Status FederatedThresholdEngine::SubmitVia(size_t platform_index,
                                           const Update& update) {
  return SubmitViaInternal(platform_index, update, /*async_ledger=*/false);
}

Status FederatedThresholdEngine::SubmitBatchVia(
    size_t platform_index, const std::vector<Update>& updates) {
  Status first = Status::Ok();
  for (const Update& update : updates) {
    Status s = SubmitViaInternal(platform_index, update, /*async_ledger=*/true);
    if (!s.ok() && first.ok()) first = s;
  }
  Status flushed = ordering_->Flush();
  if (!flushed.ok() && first.ok()) first = flushed;
  return first;
}

Status FederatedThresholdEngine::SubmitViaInternal(size_t platform_index,
                                                   const Update& update,
                                                   bool async_ledger) {
  metrics_.OnSubmit();
  PREVER_TRACE_SPAN(metrics_.submit_ns());
  PREVER_CAUSAL_ROOT_SPAN(causal_root, obs::TraceStage::kSubmit, 0);
  if (platform_index >= platforms_.size()) {
    return metrics_.Finish(Status::InvalidArgument("no such platform"));
  }
  FederatedPlatform* home = platforms_[platform_index];
  {
    PREVER_TRACE_SPAN(metrics_.verify_ns());
    PREVER_CAUSAL_SPAN(causal_verify, obs::TraceStage::kVerify);
    constraint::EvalContext local_ctx{&home->db, &update.fields,
                                      update.timestamp};
    Status internal = platform_verifiers_[platform_index]->VerifyAll(local_ctx);
    if (!internal.ok()) return metrics_.Finish(internal);
  }
  {
    // The regulation check is dominated by threshold ElGamal work.
    PREVER_TRACE_SPAN(metrics_.crypto_ns());
    PREVER_CAUSAL_SPAN(causal_crypto, obs::TraceStage::kCrypto);
    for (size_t r = 0; r < regulations_->size(); ++r) {
      Status checked = CheckRegulation(r, platform_index, update);
      if (!checked.ok()) return metrics_.Finish(checked);
    }
  }
  PREVER_TRACE_SPAN(metrics_.ledger_ns());
  PREVER_CAUSAL_SPAN(causal_ledger, obs::TraceStage::kLedgerPhase);
  Status applied = home->db.Apply(update.mutation);
  if (!applied.ok()) return metrics_.Finish(applied);
  BinaryWriter w;
  w.WriteString(home->id);
  w.WriteBytes(crypto::Sha256::Hash(update.Encode()));
  Status ordered =
      async_ledger
          ? ordering_->SubmitAsync(w.Take(), update.timestamp).status()
          : ordering_->Append(w.Take(), update.timestamp);
  return metrics_.Finish(ordered);
}

}  // namespace prever::core
