#include "core/demarcation_engine.h"

#include "obs/tracing.h"

#include "crypto/sha256.h"

namespace prever::core {

DemarcationEngine::DemarcationEngine(
    std::vector<FederatedPlatform*> platforms,
    const constraint::ConstraintCatalog* regulations,
    OrderingService* ordering)
    : platforms_(std::move(platforms)),
      regulations_(regulations),
      ordering_(ordering),
      regulation_forms_(regulations) {
  internal_verifiers_.reserve(platforms_.size());
  for (FederatedPlatform* p : platforms_) {
    internal_verifiers_.push_back(std::make_unique<constraint::CompiledVerifier>(
        &p->internal_constraints, &p->db));
  }
}

Status DemarcationEngine::ValidateRegulations() const {
  for (const constraint::Constraint& c : regulations_->constraints()) {
    auto forms = constraint::ExtractLinearConjunction(*c.expr);
    if (!forms.ok()) {
      return Status::NotSupported("regulation '" + c.name +
                                  "' is not linear: " +
                                  forms.status().message());
    }
    for (const auto& form : *forms) {
      if (form.direction != constraint::BoundDirection::kUpper) {
        return Status::NotSupported(
            "demarcation handles upper bounds only (regulation '" + c.name +
            "')");
      }
    }
  }
  return Status::Ok();
}

Status DemarcationEngine::CheckAndConsume(
    size_t regulation_index, const constraint::LinearBoundForm& form,
    size_t platform_index, const Update& update) {
  // The demarcated quantity is the sum of the update's terms; the group is
  // the identity the WHERE filter pins (we key budgets on the update's own
  // filter fields — e.g. the worker id — by hashing all string fields).
  int64_t cost = 0;
  for (const std::string& field : form.update_terms) {
    auto it = update.fields.find(field);
    if (it == update.fields.end()) {
      return Status::InvalidArgument("update lacks field '" + field + "'");
    }
    PREVER_ASSIGN_OR_RETURN(int64_t v, it->second.AsInt64());
    if (v < 0) return Status::NotSupported("negative terms unsupported");
    cost += v;
  }
  std::string group;
  for (const auto& [name, value] : update.fields) {
    if (value.is_string()) group += *value.AsString() + "|";
  }
  uint64_t bucket =
      form.aggregate->window == 0 ? 0 : update.timestamp / form.aggregate->window;

  BudgetKey key{regulation_index, group, bucket};
  auto it = budgets_.find(key);
  if (it == budgets_.end()) {
    // Fresh (group, bucket): split the bound evenly into local limits.
    BudgetState state;
    state.consumed.assign(platforms_.size(), 0);
    state.limit.assign(platforms_.size(), form.bound / static_cast<int64_t>(
                                              platforms_.size()));
    // Remainder goes to platform 0.
    state.limit[0] += form.bound % static_cast<int64_t>(platforms_.size());
    it = budgets_.emplace(std::move(key), std::move(state)).first;
  }
  BudgetState& state = it->second;
  int64_t& consumed = state.consumed[platform_index];
  int64_t& limit = state.limit[platform_index];

  if (consumed + cost <= limit) {
    consumed += cost;  // Zero-communication fast path.
    ++local_admissions_;
    return Status::Ok();
  }
  // Limit-transfer negotiation: pull slack from peers (one message round).
  ++transfers_;
  int64_t need = consumed + cost - limit;
  for (size_t peer = 0; peer < platforms_.size() && need > 0; ++peer) {
    if (peer == platform_index) continue;
    int64_t slack = state.limit[peer] - state.consumed[peer];
    if (slack <= 0) continue;
    int64_t take = std::min(slack, need);
    state.limit[peer] -= take;
    limit += take;
    need -= take;
  }
  if (consumed + cost <= limit) {
    consumed += cost;
    return Status::Ok();
  }
  return Status::ConstraintViolation(
      "update exceeds the global bound (no transferable slack left)");
}

Status DemarcationEngine::SubmitVia(size_t platform_index,
                                    const Update& update) {
  metrics_.OnSubmit();
  PREVER_TRACE_SPAN(metrics_.submit_ns());
  PREVER_CAUSAL_ROOT_SPAN(causal_root, obs::TraceStage::kSubmit, 0);
  if (platform_index >= platforms_.size()) {
    return metrics_.Finish(Status::InvalidArgument("no such platform"));
  }
  FederatedPlatform* home = platforms_[platform_index];
  obs::ScopedSpan verify_span(metrics_.verify_ns());
  obs::TraceSpan causal_verify(obs::TraceStage::kVerify);
  constraint::EvalContext local_ctx{&home->db, &update.fields,
                                    update.timestamp};
  Status internal = internal_verifiers_[platform_index]->VerifyAll(local_ctx);
  if (!internal.ok()) return metrics_.Finish(internal);
  const auto& regulations = regulations_->constraints();
  for (size_t r = 0; r < regulations.size(); ++r) {
    auto forms = regulation_forms_.ForConstraint(r);
    if (!forms.ok()) return metrics_.Finish(forms.status());
    for (const auto& form : **forms) {
      Status checked = CheckAndConsume(r, form, platform_index, update);
      if (!checked.ok()) return metrics_.Finish(checked);
    }
  }
  verify_span.End();
  causal_verify.End();
  PREVER_TRACE_SPAN(metrics_.ledger_ns());
  PREVER_CAUSAL_SPAN(causal_ledger, obs::TraceStage::kLedgerPhase);
  Status applied = home->db.Apply(update.mutation);
  if (!applied.ok()) return metrics_.Finish(applied);
  BinaryWriter w;
  w.WriteString(home->id);
  w.WriteBytes(crypto::Sha256::Hash(update.Encode()));
  Status ordered = ordering_->Append(w.Take(), update.timestamp);
  return metrics_.Finish(ordered);
}

}  // namespace prever::core
