#include "core/auditor.h"

namespace prever::core {

Status IntegrityAuditor::AuditLedger(const ledger::LedgerDb& ledger) {
  return ledger.Audit();
}

Status IntegrityAuditor::AuditChain(const ledger::Blockchain& chain) {
  return chain.Validate();
}

Status IntegrityAuditor::CheckExtension(
    const ledger::LedgerDigest& previous, const ledger::LedgerDigest& current,
    const ledger::ConsistencyProof& proof) {
  if (current.size < previous.size) {
    return Status::IntegrityViolation(
        "ledger shrank: append-only property violated");
  }
  if (!ledger::LedgerDb::VerifyConsistency(previous, current, proof)) {
    return Status::IntegrityViolation(
        "consistency proof invalid: history was rewritten");
  }
  return Status::Ok();
}

Status IntegrityAuditor::CheckReplicaAgreement(
    const std::vector<const ledger::LedgerDb*>& replicas) {
  if (replicas.empty()) {
    return Status::InvalidArgument("no replicas to compare");
  }
  uint64_t prefix = replicas[0]->size();
  for (const ledger::LedgerDb* r : replicas) {
    prefix = std::min(prefix, r->size());
  }
  PREVER_ASSIGN_OR_RETURN(ledger::LedgerDigest reference,
                          replicas[0]->DigestAt(prefix));
  for (size_t i = 1; i < replicas.size(); ++i) {
    PREVER_ASSIGN_OR_RETURN(ledger::LedgerDigest digest,
                            replicas[i]->DigestAt(prefix));
    if (!(digest == reference)) {
      return Status::IntegrityViolation(
          "replica " + std::to_string(i) +
          " diverges from replica 0 within the committed prefix");
    }
  }
  return Status::Ok();
}

}  // namespace prever::core
