#include "core/update.h"

namespace prever::core {

Bytes Update::Encode() const {
  BinaryWriter w;
  w.WriteString(id);
  w.WriteString(producer);
  w.WriteU64(timestamp);
  w.WriteU32(static_cast<uint32_t>(fields.size()));
  for (const auto& [name, value] : fields) {
    w.WriteString(name);
    value.EncodeTo(w);
  }
  mutation.EncodeTo(w);
  return w.Take();
}

Result<Update> Update::Decode(const Bytes& data) {
  BinaryReader r(data);
  Update u;
  PREVER_ASSIGN_OR_RETURN(u.id, r.ReadString());
  PREVER_ASSIGN_OR_RETURN(u.producer, r.ReadString());
  PREVER_ASSIGN_OR_RETURN(u.timestamp, r.ReadU64());
  PREVER_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  for (uint32_t i = 0; i < n; ++i) {
    PREVER_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    PREVER_ASSIGN_OR_RETURN(storage::Value value,
                            storage::Value::DecodeFrom(r));
    u.fields.emplace(std::move(name), std::move(value));
  }
  PREVER_ASSIGN_OR_RETURN(u.mutation, storage::Mutation::DecodeFrom(r));
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in update");
  return u;
}

}  // namespace prever::core
