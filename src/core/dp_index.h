#ifndef PREVER_CORE_DP_INDEX_H_
#define PREVER_CORE_DP_INDEX_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"

namespace prever::core {

/// What to do when the privacy budget runs out — the two failure modes §4
/// predicts for naive differentially-private indexing under high update
/// rates: "either … impossibility to support additional updates or … an
/// uncontrolled increase of the noise magnitude."
enum class DpExhaustionPolicy : uint8_t {
  kRefuse,   ///< Stop releasing: further updates error with Unavailable.
  kDegrade,  ///< Keep releasing by splitting the remaining budget — noise
             ///< magnitude grows without bound.
};

/// A differentially private running aggregate (the partial-disclosure
/// alternative to the RC1 crypto path, for the E8 ablation). Every update
/// both changes the true aggregate and triggers a noisy release under the
/// Laplace mechanism; each release spends privacy budget.
class DpAggregateIndex {
 public:
  /// `epsilon_total`: lifetime budget; `epsilon_per_release`: spent per
  /// noisy release under kRefuse (under kDegrade it is the *initial* rate);
  /// `sensitivity`: max per-update contribution.
  DpAggregateIndex(double epsilon_total, double epsilon_per_release,
                   double sensitivity, DpExhaustionPolicy policy,
                   uint64_t seed);

  struct Release {
    double noisy_value = 0;
    double epsilon_spent_total = 0;
    double noise_scale = 0;  ///< Laplace b parameter used for this release.
  };

  /// Applies an update of `value` and releases a fresh noisy aggregate.
  /// Unavailable when the budget is exhausted under kRefuse.
  Result<Release> Update(int64_t value);

  double true_value() const { return true_value_; }
  double epsilon_spent() const { return epsilon_spent_; }
  double epsilon_remaining() const { return epsilon_total_ - epsilon_spent_; }
  uint64_t releases() const { return releases_; }
  /// True when the policy cannot fund another release: under kRefuse, the
  /// next fixed-rate release would overdraw the budget; under kDegrade the
  /// budget is numerically gone.
  bool exhausted() const {
    if (policy_ == DpExhaustionPolicy::kRefuse) {
      return epsilon_spent_ + epsilon_per_release_ > epsilon_total_;
    }
    return epsilon_total_ - epsilon_spent_ <= 0;
  }

 private:
  double SampleLaplace(double scale);

  double epsilon_total_;
  double epsilon_per_release_;
  double sensitivity_;
  DpExhaustionPolicy policy_;
  Rng rng_;
  double true_value_ = 0;
  double epsilon_spent_ = 0;
  uint64_t releases_ = 0;
};

}  // namespace prever::core

#endif  // PREVER_CORE_DP_INDEX_H_
