#ifndef PREVER_CORE_DEMARCATION_ENGINE_H_
#define PREVER_CORE_DEMARCATION_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "constraint/constraint.h"
#include "constraint/linear.h"
#include "constraint/verifier.h"
#include "core/engine.h"
#include "core/engine_metrics.h"
#include "core/federated_mpc_engine.h"  // FederatedPlatform.
#include "core/ordering.h"
#include "core/regulation_forms.h"

namespace prever::core {

/// The Demarcation Protocol (Barbará & García-Molina, EDBT '92 — the
/// paper's ref [19], cited in §4 RC2 as the classical way to maintain
/// "linear arithmetic constraints in distributed database systems" in
/// un-protected contexts).
///
/// The global bound B on Σ per-platform consumption is split into local
/// limits L_i with Σ L_i = B. A platform accepts updates against its OWN
/// limit with no communication at all; only when an update would exceed
/// the local limit does it ask peers to transfer slack. This is the
/// non-private federated baseline: extremely cheap (zero messages in the
/// common case) but every platform sees the per-group consumption figures
/// it is asked to transfer — precisely the leak the RC2 crypto engines
/// exist to close. E4 quantifies the gap.
///
/// Demarcation maintains per-(group, window-bucket) budgets; sliding
/// windows are approximated by tumbling buckets of the window length
/// (consumption resets each bucket) — the classical protocol has no
/// sliding-window form, and the approximation is conservative within a
/// bucket but can admit up to 2x across a bucket boundary; DESIGN.md
/// lists this as the expressiveness cost of the baseline.
class DemarcationEngine : public UpdateEngine {
 public:
  DemarcationEngine(std::vector<FederatedPlatform*> platforms,
                    const constraint::ConstraintCatalog* regulations,
                    OrderingService* ordering);

  /// All regulations must be in linear upper-bound form.
  Status ValidateRegulations() const;

  Status SubmitVia(size_t platform_index, const Update& update);
  Status SubmitUpdate(const Update& update) override {
    return SubmitVia(0, update);
  }

  EngineStats stats() const override { return metrics_.Snapshot(); }
  const char* name() const override { return "demarcation-rc2-baseline"; }

  /// Limit-transfer negotiations (each costs one round of peer messages —
  /// the protocol's only communication).
  uint64_t transfers() const { return transfers_; }
  /// Updates admitted with zero communication.
  uint64_t local_admissions() const { return local_admissions_; }

 private:
  struct BudgetKey {
    size_t regulation_index;
    std::string group;   // Concatenated update-term key (e.g. worker id).
    uint64_t bucket;     // Tumbling-window index (0 when no window).
    bool operator<(const BudgetKey& o) const {
      return std::tie(regulation_index, group, bucket) <
             std::tie(o.regulation_index, o.group, o.bucket);
    }
  };

  /// Consumed units per platform for one (regulation, group, bucket).
  struct BudgetState {
    std::vector<int64_t> consumed;  // Per platform.
    std::vector<int64_t> limit;     // Per platform; sums to the bound.
  };

  Status CheckAndConsume(size_t regulation_index,
                         const constraint::LinearBoundForm& form,
                         size_t platform_index, const Update& update);

  std::vector<FederatedPlatform*> platforms_;
  const constraint::ConstraintCatalog* regulations_;
  OrderingService* ordering_;
  /// One compiled verifier per platform's internal constraints + database.
  std::vector<std::unique_ptr<constraint::CompiledVerifier>> internal_verifiers_;
  RegulationForms regulation_forms_;
  std::map<BudgetKey, BudgetState> budgets_;
  uint64_t transfers_ = 0;
  uint64_t local_admissions_ = 0;
  EngineMetrics metrics_{"demarcation-rc2-baseline"};
};

}  // namespace prever::core

#endif  // PREVER_CORE_DEMARCATION_ENGINE_H_
