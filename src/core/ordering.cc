#include "core/ordering.h"

#include "common/serial.h"

namespace prever::core {

Status CentralizedOrdering::Append(const Bytes& payload, SimTime timestamp) {
  ledger_.Append(payload, timestamp);
  return Status::Ok();
}

PbftOrdering::PbftOrdering(size_t num_replicas, net::SimNetConfig net_config,
                           const std::string& proto_label)
    : net_(std::make_unique<net::SimNetwork>(net_config)),
      ledgers_(num_replicas),
      commit_latency_us_(obs::Registry::Default().GetHistogram(
          "prever_consensus_commit_latency_us", {{"proto", proto_label}})) {
  consensus::PbftConfig config;
  config.num_replicas = num_replicas;
  cluster_ = std::make_unique<consensus::PbftCluster>(config, net_.get());
  // Commands are batch envelopes; each committed envelope is unpacked into
  // one ledger entry per payload. Entries are stamped with (seq, index) —
  // deterministic across replicas so replica agreement is auditable by
  // digest.
  cluster_->SetCommitCallback(
      [this](net::NodeId replica, uint64_t seq, const Bytes& cmd) {
        BinaryReader r(cmd);
        auto batch_id = r.ReadU64();
        auto count = r.ReadU32();
        if (!batch_id.ok() || !count.ok()) return;  // Corrupt: skip.
        for (uint32_t i = 0; i < *count; ++i) {
          auto payload = r.ReadBytes();
          if (!payload.ok()) return;
          ledgers_[replica].Append(*payload, seq * 1000 + i);
          if (replica == 0) ++committed_;
        }
      });
}

Status PbftOrdering::Append(const Bytes& payload, SimTime timestamp) {
  return AppendBatch({payload}, timestamp);
}

Status PbftOrdering::AppendBatch(const std::vector<Bytes>& payloads,
                                 SimTime timestamp) {
  (void)timestamp;  // The simulated network clock stamps commits.
  if (payloads.empty()) return Status::InvalidArgument("empty batch");
  uint64_t target = ledgers_[0].size() + payloads.size();
  BinaryWriter w;
  w.WriteU64(batch_counter_++);
  w.WriteU32(static_cast<uint32_t>(payloads.size()));
  for (const Bytes& p : payloads) w.WriteBytes(p);
  SimTime submit_at = net_->Now();
  cluster_->Submit(w.Take());
  // Drive the simulation until replica 0 commits (bounded by a generous
  // deadline to surface liveness bugs as errors instead of hangs).
  SimTime deadline = submit_at + 60 * kSecond;
  while (ledgers_[0].size() < target && net_->Now() < deadline) {
    if (!net_->Step()) break;
  }
  if (ledgers_[0].size() < target) {
    return Status::Unavailable("PBFT did not commit within deadline");
  }
  commit_latency_us_->Record(net_->Now() - submit_at);
  return Status::Ok();
}

ShardedPbftOrdering::ShardedPbftOrdering(size_t num_shards,
                                         size_t replicas_per_shard,
                                         net::SimNetConfig net_config) {
  for (size_t i = 0; i < num_shards; ++i) {
    net::SimNetConfig cfg = net_config;
    cfg.seed = net_config.seed + i;  // Independent shard networks.
    shards_.push_back(std::make_unique<PbftOrdering>(replicas_per_shard, cfg,
                                                     "pbft-sharded"));
  }
}

Status ShardedPbftOrdering::AppendRouted(const std::string& routing_key,
                                         const Bytes& payload,
                                         SimTime timestamp) {
  // FNV-1a over the routing key.
  uint64_t h = 1469598103934665603ULL;
  for (char c : routing_key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return shards_[h % shards_.size()]->Append(payload, timestamp);
}

Status ShardedPbftOrdering::Append(const Bytes& payload, SimTime timestamp) {
  return AppendRouted(ToString(payload), payload, timestamp);
}

uint64_t ShardedPbftOrdering::CommittedCount() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->CommittedCount();
  return total;
}

SimTime ShardedPbftOrdering::MaxShardTime() const {
  SimTime max_time = 0;
  for (const auto& shard : shards_) {
    // network() is non-const; shards are owned, safe to cast for a read.
    SimTime t = const_cast<PbftOrdering*>(shard.get())->network().Now();
    if (t > max_time) max_time = t;
  }
  return max_time;
}

RaftOrdering::RaftOrdering(size_t num_replicas, net::SimNetConfig net_config)
    : net_(std::make_unique<net::SimNetwork>(net_config)),
      ledgers_(num_replicas),
      commit_latency_us_(obs::Registry::Default().GetHistogram(
          "prever_consensus_commit_latency_us", {{"proto", "raft"}})) {
  consensus::RaftConfig config;
  config.num_replicas = num_replicas;
  cluster_ = std::make_unique<consensus::RaftCluster>(config, net_.get());
  for (size_t i = 0; i < num_replicas; ++i) {
    cluster_->replica(i).SetApplyCallback(
        [this, i](uint64_t index, const Bytes& cmd) {
          ledgers_[i].Append(cmd, index);  // Deterministic across replicas.
          if (i == 0) ++committed_;
        });
  }
  // Elect an initial leader.
  SimTime deadline = net_->Now() + 30 * kSecond;
  while (!cluster_->Leader().ok() && net_->Now() < deadline) {
    if (!net_->Step()) break;
  }
}

Status RaftOrdering::Append(const Bytes& payload, SimTime timestamp) {
  (void)timestamp;
  uint64_t target = ledgers_[0].size() + 1;
  SimTime submit_at = net_->Now();
  SimTime deadline = submit_at + 60 * kSecond;
  for (;;) {
    Status submitted = cluster_->Submit(payload);
    if (submitted.ok()) break;
    if (net_->Now() >= deadline) return submitted;
    if (!net_->Step()) {
      return Status::Unavailable("no Raft leader and network idle");
    }
  }
  while (ledgers_[0].size() < target && net_->Now() < deadline) {
    if (!net_->Step()) break;
  }
  if (ledgers_[0].size() < target) {
    return Status::Unavailable("Raft did not commit within deadline");
  }
  commit_latency_us_->Record(net_->Now() - submit_at);
  return Status::Ok();
}

}  // namespace prever::core
