#include "core/ordering.h"

#include <algorithm>

#include "common/serial.h"

namespace prever::core {

namespace {

/// Shared Flush driver: seal the open batch, then step the simulated
/// network until the owner's committed counter (updated by its commit
/// callback) covers every issued ticket. Uncommitted envelopes are
/// re-submitted periodically — the recovery path for batches lost to
/// crashes, drops, or leader changes (commit-side dedup keeps this
/// idempotent).
Status DriveFlush(net::SimNetwork* net, GroupCommitPipeline* pipeline,
                  const uint64_t& committed, const char* proto) {
  pipeline->CloseOpenBatch();
  const uint64_t target = pipeline->TicketCount();
  const OrderingPipelineConfig& cfg = pipeline->config();
  const SimTime deadline = net->Now() + cfg.flush_timeout;
  SimTime next_retry = net->Now() + cfg.retry_interval;
  while (committed < target && net->Now() < deadline) {
    if (!net->Step()) {
      // Idle network: re-submission is the only way forward. If that also
      // generates no events, fail honestly instead of spinning.
      pipeline->ResubmitUncommitted();
      if (!net->Step()) break;
    }
    if (net->Now() >= next_retry) {
      pipeline->ResubmitUncommitted();
      next_retry = net->Now() + cfg.retry_interval;
    }
  }
  pipeline->OnProgress(committed);
  if (committed < target) {
    return Status::Unavailable(std::string(proto) +
                               " ordering did not commit within the flush "
                               "deadline");
  }
  return Status::Ok();
}

Status CheckBatch(const std::vector<Bytes>& payloads) {
  if (payloads.empty()) return Status::InvalidArgument("empty batch");
  if (payloads.size() >= kMaxOrderingBatch) {
    return Status::InvalidArgument("batch exceeds 2^24 payloads");
  }
  return Status::Ok();
}

/// Canonical encodings of the last `n` ledger entries (the ones a commit
/// event just appended) — handed to commit observers for journaling.
std::vector<Bytes> EncodeLedgerTail(const ledger::LedgerDb& ledger, size_t n) {
  std::vector<Bytes> out;
  out.reserve(n);
  for (uint64_t seq = ledger.size() - n; seq < ledger.size(); ++seq) {
    auto entry = ledger.GetEntry(seq);
    if (entry.ok()) out.push_back(entry->Encode());
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------- OrderingService

Result<OrderingService::Ticket> OrderingService::SubmitAsync(
    const Bytes& payload, SimTime timestamp) {
  // Degraded mode for services without a pipeline: commit synchronously.
  PREVER_RETURN_IF_ERROR(Append(payload, timestamp));
  return CommittedCount() - 1;
}

Status OrderingService::Flush() { return Status::Ok(); }

// ------------------------------------------------------ GroupCommitPipeline

GroupCommitPipeline::GroupCommitPipeline(net::SimNetwork* net,
                                         OrderingPipelineConfig config,
                                         const std::string& proto_label,
                                         SubmitFn submit)
    : net_(net),
      config_(config),
      submit_(std::move(submit)),
      batch_size_(obs::Registry::Default().GetHistogram(
          "prever_ordering_batch_size", {{"proto", proto_label}})),
      inflight_depth_(obs::Registry::Default().GetHistogram(
          "prever_ordering_inflight_depth", {{"proto", proto_label}})),
      commit_latency_us_(obs::Registry::Default().GetHistogram(
          "prever_consensus_commit_latency_us", {{"proto", proto_label}})) {
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.max_batch > kMaxOrderingBatch - 1) {
    config_.max_batch = kMaxOrderingBatch - 1;
  }
  if (config_.max_inflight == 0) config_.max_inflight = 1;
}

OrderingService::Ticket GroupCommitPipeline::Enqueue(const Bytes& payload) {
  if (open_payloads_.empty() && config_.max_batch > 1 &&
      config_.max_delay > 0) {
    // First payload of a new batch: arm the adaptive-close timer. The epoch
    // guard voids it if the batch seals early (size limit or Flush).
    uint64_t epoch = open_epoch_;
    net_->ScheduleAfter(config_.max_delay, [this, epoch] {
      if (epoch != open_epoch_) return;
      SealOpen();
      PumpSubmissions();
    });
  }
  open_payloads_.push_back(payload);
  open_times_.push_back(net_->Now());
  // Queue-wait span: child of the caller's context (the engine's ledger
  // phase) or a fresh root for raw ordering payloads; closed at batch seal.
  obs::Tracer::SetThreadSimClock(&net_->clock());
  open_traces_.push_back(
      obs::Tracer::Get().BeginSpan(obs::TraceStage::kQueueWait));
  OrderingService::Ticket ticket = next_ticket_++;
  if (open_payloads_.size() >= config_.max_batch) SealOpen();
  PumpSubmissions();
  return ticket;
}

OrderingService::Ticket GroupCommitPipeline::EnqueueSealed(
    const std::vector<Bytes>& payloads) {
  SealOpen();  // Preserve submission order across the two paths.
  std::vector<SimTime> times(payloads.size(), net_->Now());
  next_ticket_ += payloads.size();
  obs::Tracer::SetThreadSimClock(&net_->clock());
  // Pre-sealed batches skip per-payload queue-wait (they never sit in the
  // open batch); the whole envelope parents to the caller's context.
  std::vector<obs::TraceContext> traces(
      1, obs::Tracer::Get().BeginSpan(obs::TraceStage::kQueueWait,
                                      payloads.size()));
  Seal(payloads, times, traces);
  PumpSubmissions();
  return next_ticket_ - 1;
}

void GroupCommitPipeline::SealOpen() {
  ++open_epoch_;
  if (open_payloads_.empty()) return;
  std::vector<Bytes> payloads = std::move(open_payloads_);
  std::vector<SimTime> times = std::move(open_times_);
  std::vector<obs::TraceContext> traces = std::move(open_traces_);
  open_payloads_.clear();
  open_times_.clear();
  open_traces_.clear();
  Seal(payloads, times, traces);
}

void GroupCommitPipeline::Seal(const std::vector<Bytes>& payloads,
                               const std::vector<SimTime>& times,
                               const std::vector<obs::TraceContext>& traces) {
  if (payloads.empty()) return;
  Batch batch;
  batch.batch_id = batch_counter_++;
  BinaryWriter w;
  w.WriteU64(batch.batch_id);
  w.WriteU32(static_cast<uint32_t>(payloads.size()));
  for (const Bytes& p : payloads) w.WriteBytes(p);
  batch.envelope = w.Take();
  sealed_tickets_ += payloads.size();
  batch.end_ticket = sealed_tickets_;
  batch.submit_times = times;
  // Close every payload's queue-wait span; the envelope's consensus span
  // becomes a child of the first sampled one, and the other sampled
  // payloads link to it with a batch-join instant so a per-payload tree
  // still reaches the consensus/durability stages.
  obs::Tracer& tracer = obs::Tracer::Get();
  for (const obs::TraceContext& t : traces) {
    tracer.EndSpan(t, obs::TraceStage::kQueueWait, batch.batch_id);
  }
  for (const obs::TraceContext& t : traces) {
    if (!t.sampled()) continue;
    if (!batch.trace.sampled()) {
      batch.trace = tracer.BeginSpan(obs::TraceStage::kConsensus, t,
                                     batch.batch_id);
      tracer.Instant(batch.trace, obs::TraceStage::kBatchSeal,
                     payloads.size());
    } else {
      tracer.Instant(t, obs::TraceStage::kBatchJoin, batch.trace.span_id);
    }
  }
  batch_size_->Record(payloads.size());
  queued_.push_back(std::move(batch));
}

void GroupCommitPipeline::PumpSubmissions() {
  while (!queued_.empty() && inflight_.size() < config_.max_inflight) {
    // Consensus submission runs under the batch's context so the protocol
    // messages it synchronously emits carry it across the wire.
    obs::ScopedTraceContext scope(queued_.front().trace);
    if (!submit_(queued_.front().envelope).ok()) return;  // Retry later.
    inflight_.push_back(std::move(queued_.front()));
    queued_.pop_front();
    inflight_depth_->Record(inflight_.size());
  }
}

void GroupCommitPipeline::CloseOpenBatch() {
  SealOpen();
  PumpSubmissions();
}

void GroupCommitPipeline::OnProgress(uint64_t committed) {
  SimTime now = net_->Now();
  while (!inflight_.empty() && inflight_.front().end_ticket <= committed) {
    for (SimTime t : inflight_.front().submit_times) {
      commit_latency_us_->Record(now - t);
    }
    obs::Tracer::Get().EndSpan(inflight_.front().trace,
                               obs::TraceStage::kConsensus,
                               inflight_.front().batch_id);
    inflight_.pop_front();
  }
  PumpSubmissions();
}

void GroupCommitPipeline::ResubmitUncommitted() {
  for (const Batch& batch : inflight_) {
    obs::ScopedTraceContext scope(batch.trace);
    (void)submit_(batch.envelope);
  }
  PumpSubmissions();
}

obs::TraceContext GroupCommitPipeline::ContextForBatch(
    uint64_t batch_id) const {
  for (const Batch& batch : inflight_) {
    if (batch.batch_id == batch_id) return batch.trace;
  }
  for (const Batch& batch : queued_) {
    if (batch.batch_id == batch_id) return batch.trace;
  }
  return {};
}

// ------------------------------------------------------ CentralizedOrdering

Status CentralizedOrdering::Append(const Bytes& payload, SimTime timestamp) {
  ledger_.Append(payload, timestamp);
  return Status::Ok();
}

// ------------------------------------------------------------ PbftOrdering

PbftOrdering::PbftOrdering(size_t num_replicas, net::SimNetConfig net_config,
                           const std::string& proto_label,
                           OrderingPipelineConfig pipeline,
                           OrderingRecoveryConfig recovery)
    : net_(std::make_unique<net::SimNetwork>(net_config)),
      ledgers_(num_replicas),
      applied_seq_(num_replicas, 0) {
  consensus::PbftConfig config;
  config.num_replicas = num_replicas;
  // Protocol window >= pipeline window, so W instances can run the three
  // phases concurrently without the primary deferring our own submissions.
  config.high_watermark_window =
      std::max<uint64_t>(pipeline.max_inflight, 1);
  config.checkpoint_interval = recovery.checkpoint_interval;
  config.enable_state_transfer = recovery.enable_state_transfer;
  cluster_ = std::make_unique<consensus::PbftCluster>(config, net_.get());
  for (size_t i = 0; i < num_replicas; ++i) {
    cluster_->replica(i).SetStateCallbacks(
        [this, i] { return EncodeReplicaState(i); },
        [this, i](uint64_t /*seq*/, const Bytes& app_state) {
          if (!app_state.empty()) (void)RestoreReplicaState(i, app_state);
        });
  }
  pipeline_ = std::make_unique<GroupCommitPipeline>(
      net_.get(), pipeline, proto_label, [this](const Bytes& envelope) {
        cluster_->Submit(envelope);
        return Status::Ok();
      });
  // Commands are batch envelopes; each committed envelope is unpacked into
  // one ledger entry per payload. Entries are stamped with (seq, index) —
  // deterministic across replicas so replica agreement is auditable by
  // digest.
  cluster_->SetCommitCallback(
      [this](net::NodeId replica, uint64_t seq, const Bytes& cmd) {
        BinaryReader r(cmd);
        auto batch_id = r.ReadU64();
        auto count = r.ReadU32();
        if (!batch_id.ok() || !count.ok()) return;  // Corrupt: skip.
        // Commit events at or below the applied watermark are already in
        // the (checkpoint-restored) ledger; re-appending would duplicate.
        if (seq <= applied_seq_[replica]) return;
        applied_seq_[replica] = seq;
        std::vector<Bytes> payloads;
        std::vector<SimTime> stamps;
        payloads.reserve(*count);
        stamps.reserve(*count);
        for (uint32_t i = 0; i < *count; ++i) {
          auto payload = r.ReadBytes();
          if (!payload.ok()) return;
          payloads.push_back(std::move(*payload));
          stamps.push_back(BatchEntryStamp(seq, i));
        }
        if (replica == 0) {
          // Durability closure: the canonical replica's ledger append,
          // parented to the envelope's consensus span.
          obs::Tracer& tracer = obs::Tracer::Get();
          obs::TraceContext span = tracer.BeginChild(
              obs::TraceStage::kLedgerAppend,
              pipeline_->ContextForBatch(*batch_id), seq);
          (void)ledgers_[replica].AppendBatch(payloads, stamps);
          tracer.EndSpan(span, obs::TraceStage::kLedgerAppend,
                         payloads.size());
          committed_ = ledgers_[0].size();
          pipeline_->OnProgress(committed_);
        } else {
          (void)ledgers_[replica].AppendBatch(payloads, stamps);
        }
        if (commit_observer_) {
          commit_observer_(replica, seq, *batch_id,
                           EncodeLedgerTail(ledgers_[replica],
                                            payloads.size()));
        }
      });
}

Bytes PbftOrdering::EncodeReplicaState(size_t i) const {
  BinaryWriter w;
  w.WriteU64(applied_seq_[i]);
  std::vector<Bytes> entries = ledgers_[i].EncodeEntries();
  w.WriteU64(entries.size());
  for (const Bytes& e : entries) w.WriteBytes(e);
  return w.Take();
}

Status PbftOrdering::RestoreReplicaState(size_t i, const Bytes& blob) {
  BinaryReader r(blob);
  PREVER_ASSIGN_OR_RETURN(uint64_t applied_seq, r.ReadU64());
  PREVER_ASSIGN_OR_RETURN(uint64_t n, r.ReadU64());
  std::vector<Bytes> records;
  records.reserve(n);
  for (uint64_t k = 0; k < n; ++k) {
    PREVER_ASSIGN_OR_RETURN(Bytes e, r.ReadBytes());
    records.push_back(std::move(e));
  }
  PREVER_ASSIGN_OR_RETURN(ledger::LedgerDb restored,
                          ledger::LedgerDb::FromRecords(records));
  return RestoreReplica(i, std::move(restored), applied_seq);
}

Status PbftOrdering::RestoreReplica(size_t i, ledger::LedgerDb ledger,
                                    uint64_t applied_seq) {
  if (i >= ledgers_.size()) return Status::InvalidArgument("bad replica");
  ledgers_[i] = std::move(ledger);
  applied_seq_[i] = applied_seq;
  if (i == 0) committed_ = ledgers_[0].size();
  return Status::Ok();
}

Status PbftOrdering::Append(const Bytes& payload, SimTime timestamp) {
  PREVER_RETURN_IF_ERROR(SubmitAsync(payload, timestamp).status());
  return Flush();
}

Status PbftOrdering::AppendBatch(const std::vector<Bytes>& payloads,
                                 SimTime timestamp) {
  (void)timestamp;  // The consensus sequence stamps commits.
  PREVER_RETURN_IF_ERROR(CheckBatch(payloads));
  pipeline_->EnqueueSealed(payloads);
  return Flush();
}

Result<OrderingService::Ticket> PbftOrdering::SubmitAsync(const Bytes& payload,
                                                          SimTime timestamp) {
  (void)timestamp;
  return pipeline_->Enqueue(payload);
}

Status PbftOrdering::Flush() {
  return DriveFlush(net_.get(), pipeline_.get(), committed_, "PBFT");
}

// ----------------------------------------------------- ShardedPbftOrdering

ShardedPbftOrdering::ShardedPbftOrdering(size_t num_shards,
                                         size_t replicas_per_shard,
                                         net::SimNetConfig net_config,
                                         OrderingPipelineConfig pipeline) {
  for (size_t i = 0; i < num_shards; ++i) {
    net::SimNetConfig cfg = net_config;
    cfg.seed = net_config.seed + i;  // Independent shard networks.
    shards_.push_back(std::make_unique<PbftOrdering>(
        replicas_per_shard, cfg, "pbft-sharded", pipeline));
  }
}

size_t ShardedPbftOrdering::ShardOf(const std::string& routing_key) const {
  // FNV-1a over the routing key.
  uint64_t h = 1469598103934665603ULL;
  for (char c : routing_key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h % shards_.size();
}

Status ShardedPbftOrdering::AppendRouted(const std::string& routing_key,
                                         const Bytes& payload,
                                         SimTime timestamp) {
  return shards_[ShardOf(routing_key)]->Append(payload, timestamp);
}

Status ShardedPbftOrdering::Append(const Bytes& payload, SimTime timestamp) {
  return AppendRouted(ToString(payload), payload, timestamp);
}

Result<OrderingService::Ticket> ShardedPbftOrdering::SubmitRoutedAsync(
    const std::string& routing_key, const Bytes& payload, SimTime timestamp) {
  PREVER_RETURN_IF_ERROR(
      shards_[ShardOf(routing_key)]->SubmitAsync(payload, timestamp).status());
  return next_ticket_++;
}

Result<OrderingService::Ticket> ShardedPbftOrdering::SubmitAsync(
    const Bytes& payload, SimTime timestamp) {
  return SubmitRoutedAsync(ToString(payload), payload, timestamp);
}

Status ShardedPbftOrdering::Flush() {
  Status first = Status::Ok();
  for (auto& shard : shards_) {
    Status s = shard->Flush();
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

uint64_t ShardedPbftOrdering::CommittedCount() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->CommittedCount();
  return total;
}

SimTime ShardedPbftOrdering::MaxShardTime() const {
  SimTime max_time = 0;
  for (const auto& shard : shards_) {
    max_time = std::max(max_time, shard->network().Now());
  }
  return max_time;
}

// ------------------------------------------------------------ RaftOrdering

RaftOrdering::RaftOrdering(size_t num_replicas, net::SimNetConfig net_config,
                           OrderingPipelineConfig pipeline)
    : net_(std::make_unique<net::SimNetwork>(net_config)),
      ledgers_(num_replicas),
      applied_batches_(num_replicas),
      applied_floor_(num_replicas, 0) {
  consensus::RaftConfig config;
  config.num_replicas = num_replicas;
  cluster_ = std::make_unique<consensus::RaftCluster>(config, net_.get());
  pipeline_ = std::make_unique<GroupCommitPipeline>(
      net_.get(), pipeline, "raft",
      [this](const Bytes& envelope) { return cluster_->Submit(envelope); });
  for (size_t i = 0; i < num_replicas; ++i) {
    cluster_->replica(i).SetApplyCallback(
        [this, i](uint64_t index, const Bytes& cmd) {
          applied_floor_[i] = index;
          BinaryReader r(cmd);
          auto batch_id = r.ReadU64();
          auto count = r.ReadU32();
          if (!batch_id.ok() || !count.ok()) return;  // Not an envelope: skip.
          // A batch re-submitted after a leader change can land at a second
          // log index; every replica applies the same log, so skipping by
          // batch id keeps the ledgers identical AND duplicate-free.
          if (!applied_batches_[i].insert(*batch_id).second) return;
          std::vector<Bytes> payloads;
          std::vector<SimTime> stamps;
          payloads.reserve(*count);
          stamps.reserve(*count);
          for (uint32_t j = 0; j < *count; ++j) {
            auto payload = r.ReadBytes();
            if (!payload.ok()) return;
            payloads.push_back(std::move(*payload));
            stamps.push_back(BatchEntryStamp(index, j));
          }
          if (i == 0) {
            obs::Tracer& tracer = obs::Tracer::Get();
            obs::TraceContext span = tracer.BeginChild(
                obs::TraceStage::kLedgerAppend,
                pipeline_->ContextForBatch(*batch_id), index);
            (void)ledgers_[i].AppendBatch(payloads, stamps);
            tracer.EndSpan(span, obs::TraceStage::kLedgerAppend,
                           payloads.size());
            committed_ = ledgers_[0].size();
            pipeline_->OnProgress(committed_);
          } else {
            (void)ledgers_[i].AppendBatch(payloads, stamps);
          }
          if (commit_observer_) {
            commit_observer_(i, index, *batch_id,
                             EncodeLedgerTail(ledgers_[i], payloads.size()));
          }
        });
    cluster_->replica(i).SetSnapshotInstaller(
        [this, i](uint64_t /*snap_index*/, const Bytes& blob) {
          if (!blob.empty()) (void)RestoreReplicaState(i, blob);
        });
  }
  // Elect an initial leader.
  SimTime deadline = net_->Now() + 30 * kSecond;
  while (!cluster_->Leader().ok() && net_->Now() < deadline) {
    if (!net_->Step()) break;
  }
}

Bytes RaftOrdering::EncodeReplicaState(size_t i) const {
  BinaryWriter w;
  w.WriteU64(applied_floor_[i]);
  w.WriteU64(applied_batches_[i].size());
  for (uint64_t id : applied_batches_[i]) w.WriteU64(id);
  std::vector<Bytes> entries = ledgers_[i].EncodeEntries();
  w.WriteU64(entries.size());
  for (const Bytes& e : entries) w.WriteBytes(e);
  return w.Take();
}

Status RaftOrdering::RestoreReplicaState(size_t i, const Bytes& blob) {
  BinaryReader r(blob);
  PREVER_ASSIGN_OR_RETURN(uint64_t floor, r.ReadU64());
  PREVER_ASSIGN_OR_RETURN(uint64_t n_ids, r.ReadU64());
  std::vector<uint64_t> ids;
  ids.reserve(n_ids);
  for (uint64_t k = 0; k < n_ids; ++k) {
    PREVER_ASSIGN_OR_RETURN(uint64_t id, r.ReadU64());
    ids.push_back(id);
  }
  PREVER_ASSIGN_OR_RETURN(uint64_t n, r.ReadU64());
  std::vector<Bytes> records;
  records.reserve(n);
  for (uint64_t k = 0; k < n; ++k) {
    PREVER_ASSIGN_OR_RETURN(Bytes e, r.ReadBytes());
    records.push_back(std::move(e));
  }
  PREVER_ASSIGN_OR_RETURN(ledger::LedgerDb restored,
                          ledger::LedgerDb::FromRecords(records));
  if (i >= ledgers_.size()) return Status::InvalidArgument("bad replica");
  ledgers_[i] = std::move(restored);
  applied_batches_[i] = std::set<uint64_t>(ids.begin(), ids.end());
  applied_floor_[i] = floor;
  if (i == 0) committed_ = ledgers_[0].size();
  return Status::Ok();
}

Status RaftOrdering::RestoreReplica(size_t i, ledger::LedgerDb ledger,
                                    uint64_t applied_floor,
                                    const std::vector<uint64_t>& batch_ids) {
  if (i >= ledgers_.size()) return Status::InvalidArgument("bad replica");
  ledgers_[i] = std::move(ledger);
  applied_batches_[i] =
      std::set<uint64_t>(batch_ids.begin(), batch_ids.end());
  applied_floor_[i] = applied_floor;
  if (i == 0) committed_ = ledgers_[0].size();
  // Re-drive the state machine through the real recovery path: the replica
  // rewinds last_applied to the restored floor and re-delivers the committed
  // suffix (batch-id dedup absorbs anything already in the ledger).
  cluster_->replica(i).Recover(applied_floor);
  return Status::Ok();
}

Status RaftOrdering::Append(const Bytes& payload, SimTime timestamp) {
  PREVER_RETURN_IF_ERROR(SubmitAsync(payload, timestamp).status());
  return Flush();
}

Status RaftOrdering::AppendBatch(const std::vector<Bytes>& payloads,
                                 SimTime timestamp) {
  (void)timestamp;
  PREVER_RETURN_IF_ERROR(CheckBatch(payloads));
  pipeline_->EnqueueSealed(payloads);
  return Flush();
}

Result<OrderingService::Ticket> RaftOrdering::SubmitAsync(const Bytes& payload,
                                                          SimTime timestamp) {
  (void)timestamp;
  return pipeline_->Enqueue(payload);
}

Status RaftOrdering::Flush() {
  return DriveFlush(net_.get(), pipeline_.get(), committed_, "Raft");
}

}  // namespace prever::core
