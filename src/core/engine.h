#ifndef PREVER_CORE_ENGINE_H_
#define PREVER_CORE_ENGINE_H_

#include "common/status.h"
#include "core/update.h"

namespace prever::core {

/// The Fig. 2 pipeline contract every PReVer engine implements:
///   (0) authorities registered constraints/regulations at setup;
///   (1) a data producer submits an update;
///   (2) the engine verifies it against constraints — under the privacy
///       discipline of its setting (RC1/RC2/RC3);
///   (3) the verified update is incorporated into the database(s) and
///       recorded on the integrity layer (RC4).
///
/// SubmitUpdate returns OK when the update was accepted and durably
/// recorded; ConstraintViolation when verification rejected it; other codes
/// for malformed input or infrastructure failures.
class UpdateEngine {
 public:
  virtual ~UpdateEngine() = default;

  virtual Status SubmitUpdate(const Update& update) = 0;

  /// Per-instance outcome totals. A snapshot (by value): engines back these
  /// by registry counters (src/obs/) rather than member bookkeeping.
  virtual EngineStats stats() const = 0;

  /// Human-readable engine identifier (benchmark rows use it).
  virtual const char* name() const = 0;
};

}  // namespace prever::core

#endif  // PREVER_CORE_ENGINE_H_
