#ifndef PREVER_CORE_ENCRYPTED_ENGINE_H_
#define PREVER_CORE_ENCRYPTED_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "constraint/linear.h"
#include "core/engine.h"
#include "core/engine_metrics.h"
#include "core/ordering.h"
#include "crypto/paillier.h"
#include "crypto/pedersen.h"
#include "crypto/zkp.h"

namespace prever::core {

/// A private value sealed by its producer for the RC1 engine:
///  - `value_ct`   Paillier encryption of v (manager aggregates these),
///  - `rand_ct`    Paillier encryption of the commitment randomness r (so
///                 the owner can recover aggregate randomness),
///  - `commitment` Pedersen commitment g^v h^r (manager-verifiable binding),
///  - `range_proof` producer's proof that v ∈ [0, 2^value_bits) — without
///                 it a covert producer could inject "negative" values to
///                 deflate the aggregate.
struct SealedValue {
  crypto::PaillierCiphertext value_ct;
  crypto::PaillierCiphertext rand_ct;
  crypto::PedersenCommitment commitment;
  crypto::RangeProof range_proof;
};

/// The data owner of the single-private-database setting (§2.1): holds the
/// Paillier private key and answers bound-attestation requests from the
/// untrusted manager. The owner is covert w.r.t. compliance (it wants the
/// certificate) — but it cannot cheat, because the proof it returns is
/// verified against the commitment aggregate the MANAGER computed.
class DataOwner {
 public:
  /// `paillier_bits` is a lower bound: the constructor enforces a modulus of
  /// at least |q| + 64 bits so aggregated commitment randomness (sums of
  /// values < q) never wraps the plaintext space.
  DataOwner(size_t paillier_bits, const crypto::PedersenParams& pedersen,
            uint64_t seed);
  virtual ~DataOwner() = default;

  const crypto::PaillierPublicKey& paillier_pub() const { return keys_.pub; }
  const crypto::PedersenParams& pedersen() const { return *pedersen_; }

  /// Producer-side sealing (uses only public material + fresh randomness).
  Result<SealedValue> Seal(int64_t value, size_t value_bits,
                           crypto::Drbg& drbg) const;

  /// Oracle: decrypts the aggregates, checks consistency with the manager's
  /// commitment product, and (if compliant) returns a ZK proof that the
  /// total respects the bound. ConstraintViolation when the total violates
  /// it; IntegrityViolation when ciphertexts and commitment disagree.
  /// Virtual so the security tests can model a Byzantine owner returning
  /// proofs for the wrong statement — the manager-side verification must
  /// catch those regardless of what the oracle answers.
  virtual Result<crypto::RangeProof> AttestUpperBound(
      const crypto::PaillierCiphertext& total_value_ct,
      const crypto::PaillierCiphertext& total_rand_ct,
      const crypto::PedersenCommitment& total_cm, int64_t bound,
      size_t slack_bits);

  virtual Result<crypto::RangeProof> AttestLowerBound(
      const crypto::PaillierCiphertext& total_value_ct,
      const crypto::PaillierCiphertext& total_rand_ct,
      const crypto::PedersenCommitment& total_cm, int64_t bound,
      size_t slack_bits);

  /// Decryptions performed (privacy-cost accounting for the benches).
  uint64_t attestations() const { return attestations_; }

 private:
  Result<std::pair<crypto::BigInt, crypto::BigInt>> DecryptTotals(
      const crypto::PaillierCiphertext& total_value_ct,
      const crypto::PaillierCiphertext& total_rand_ct,
      const crypto::PedersenCommitment& total_cm);

  crypto::PaillierKeyPair keys_;
  const crypto::PedersenParams* pedersen_;
  crypto::Drbg drbg_;
  uint64_t attestations_ = 0;
};

/// One upper/lower bound the RC1 engine enforces over the sealed values,
/// grouped by a public attribute and optionally windowed by time. This is
/// the engine-side compilation target of a LinearBoundForm.
struct RegulatedBound {
  constraint::BoundDirection direction = constraint::BoundDirection::kUpper;
  int64_t bound = 0;
  SimTime window = 0;  ///< 0 = all history.
  size_t slack_bits = 32;
};

/// RC1 engine: an untrusted data manager verifies updates against bound
/// constraints and executes them on private data, learning only public
/// routing attributes and accept/reject bits. See DESIGN.md §2 for the
/// FHE→Paillier substitution argument.
class EncryptedEngine : public UpdateEngine {
 public:
  /// Updates must carry fields `<group_field>` (public string, e.g. the
  /// worker pseudonym or sustainability metric id) and `<value_field>`
  /// (private int64, sealed before the manager sees it).
  EncryptedEngine(DataOwner* owner, OrderingService* ordering,
                  std::string group_field, std::string value_field,
                  std::vector<RegulatedBound> bounds,
                  size_t value_bits = 16, uint64_t seed = 1);

  /// Convenience: runs the producer-side sealing then SubmitSealed — the
  /// manager-side code never touches `update.fields[value_field]`.
  Status SubmitUpdate(const Update& update) override;

  EngineStats stats() const override { return metrics_.Snapshot(); }
  const char* name() const override { return "encrypted-rc1"; }

  /// What the manager stores: no plaintext anywhere.
  struct SealedRow {
    std::string group;
    SimTime timestamp = 0;
    SealedValue sealed;
  };

  struct SealedSubmission {
    std::string id;
    std::string producer;
    SimTime timestamp = 0;
    std::string group;
    SealedValue sealed;
  };

  /// Producer side.
  Result<SealedSubmission> Seal(const Update& update);

  /// Manager side: verify (producer range proof + owner attestations per
  /// bound) then store + ledger.
  Status SubmitSealed(const SealedSubmission& submission);

  /// Producer side for a whole batch; stops at the first sealing failure.
  Result<std::vector<SealedSubmission>> SealBatch(
      const std::vector<Update>& updates);

  /// Manager side for a whole batch. The producers' range proofs are
  /// independent read-only checks, so when a thread pool is set they are
  /// verified concurrently; aggregation, owner attestation and ledgering
  /// then proceed serially in batch order (they mutate engine state).
  /// Every submission is judged individually — a rejected update does not
  /// abort the batch — and the first non-OK status is returned.
  Status SubmitSealedBatch(const std::vector<SealedSubmission>& batch);

  /// Optional worker pool (not owned; may be null) for batch verification.
  void set_thread_pool(common::ThreadPool* pool) { pool_ = pool; }

  size_t NumRows(const std::string& group) const;

 private:
  /// Range-proof check shared by the serial and batch paths (thread-safe).
  bool VerifyProducerRange(const SealedSubmission& submission) const;
  /// Everything after the range check: per-bound attestations + store +
  /// ledger. Calls metrics_.Finish on every path. With `async_ledger` the
  /// ledger append goes through the ordering pipeline's window (the caller
  /// must Flush); otherwise it blocks until quorum-committed.
  Status FinishSealed(const SealedSubmission& submission, bool range_ok,
                      bool async_ledger = false);

  DataOwner* owner_;
  OrderingService* ordering_;
  std::string group_field_;
  std::string value_field_;
  std::vector<RegulatedBound> bounds_;
  size_t value_bits_;
  crypto::Drbg producer_drbg_;
  common::ThreadPool* pool_ = nullptr;
  std::map<std::string, std::vector<SealedRow>> rows_;
  EngineMetrics metrics_{"encrypted-rc1"};
};

}  // namespace prever::core

#endif  // PREVER_CORE_ENCRYPTED_ENGINE_H_
