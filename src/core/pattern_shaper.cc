#include "core/pattern_shaper.h"

namespace prever::core {

size_t UpdatePatternShaper::AdvanceTo(SimTime now) {
  size_t fired = 0;
  while (next_tick_ <= now) {
    SimTime tick = next_tick_;
    next_tick_ += interval_;
    ++fired;
    if (!queue_.empty() && queue_.front().timestamp <= tick) {
      Update real = std::move(queue_.front());
      queue_.pop_front();
      total_added_latency_ += tick - real.timestamp;
      // The observable timestamp is the tick, not the true arrival.
      real.timestamp = tick;
      if (real.mutation.op != storage::Mutation::Op::kDelete &&
          !real.mutation.row.empty()) {
        // Refresh any timestamp column to the shaped time so WINDOW
        // regulations observe the disclosed (not the secret) time.
        for (auto& cell : real.mutation.row) {
          if (cell.is_timestamp()) cell = storage::Value::Timestamp(tick);
        }
      }
      (void)inner_->SubmitUpdate(real);
      ++real_submitted_;
    } else {
      (void)inner_->SubmitUpdate(dummy_factory_(tick));
      ++dummies_submitted_;
    }
  }
  return fired;
}

}  // namespace prever::core
