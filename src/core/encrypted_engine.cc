#include "core/encrypted_engine.h"

#include "crypto/sha256.h"
#include "mutate/mutation.h"
#include "obs/tracing.h"

namespace prever::core {

using crypto::BigInt;
using crypto::PaillierCiphertext;
using crypto::PedersenCommitment;
using crypto::RangeProof;

DataOwner::DataOwner(size_t paillier_bits,
                     const crypto::PedersenParams& pedersen, uint64_t seed)
    : pedersen_(&pedersen), drbg_(seed) {
  // The owner decrypts SUMS of commitment randomness (each < q). The
  // Paillier plaintext space must hold ~2^64 of them without wrapping, or
  // the binding check would reject honest aggregates. Grow the modulus to
  // |q| + 64 bits if the caller asked for less.
  size_t min_bits = pedersen.q.BitLength() + 64;
  if (min_bits % 2 != 0) ++min_bits;
  if (paillier_bits < min_bits) paillier_bits = min_bits;
  keys_ = crypto::PaillierGenerateKey(paillier_bits, drbg_).value();
}

Result<SealedValue> DataOwner::Seal(int64_t value, size_t value_bits,
                                    crypto::Drbg& drbg) const {
  if (value < 0 || BigInt(value).BitLength() > value_bits) {
    return Status::InvalidArgument("value outside [0, 2^value_bits)");
  }
  SealedValue sealed;
  BigInt v(value);
  BigInt r = drbg.RandomBelow(pedersen_->q);
  sealed.commitment = crypto::PedersenCommit(*pedersen_, v, r);
  PREVER_ASSIGN_OR_RETURN(sealed.value_ct,
                          crypto::PaillierEncrypt(keys_.pub, v, drbg));
  PREVER_ASSIGN_OR_RETURN(sealed.rand_ct,
                          crypto::PaillierEncrypt(keys_.pub, r, drbg));
  PREVER_ASSIGN_OR_RETURN(
      sealed.range_proof,
      crypto::ProveRange(*pedersen_, sealed.commitment, v, r, value_bits,
                         drbg));
  return sealed;
}

Result<std::pair<BigInt, BigInt>> DataOwner::DecryptTotals(
    const PaillierCiphertext& total_value_ct,
    const PaillierCiphertext& total_rand_ct,
    const PedersenCommitment& total_cm) {
  ++attestations_;
  PREVER_ASSIGN_OR_RETURN(BigInt total,
                          crypto::PaillierDecrypt(keys_, total_value_ct));
  PREVER_ASSIGN_OR_RETURN(BigInt rand_sum,
                          crypto::PaillierDecrypt(keys_, total_rand_ct));
  BigInt rand_mod_q = rand_sum.Mod(pedersen_->q);
  // Binding check: the manager's commitment product must open to exactly
  // what the ciphertext aggregates decrypt to.
  if (PREVER_MUTATION(
          ENC_BINDING_SKIP,
          !crypto::PedersenVerify(*pedersen_, total_cm, total, rand_mod_q),
          false)) {
    return Status::IntegrityViolation(
        "ciphertext aggregate and commitment aggregate disagree");
  }
  return std::make_pair(total, rand_mod_q);
}

Result<RangeProof> DataOwner::AttestUpperBound(
    const PaillierCiphertext& total_value_ct,
    const PaillierCiphertext& total_rand_ct,
    const PedersenCommitment& total_cm, int64_t bound, size_t slack_bits) {
  PREVER_ASSIGN_OR_RETURN(
      auto totals, DecryptTotals(total_value_ct, total_rand_ct, total_cm));
  const auto& [total, rand_mod_q] = totals;
  if (PREVER_MUTATION(ENC_BOUND_OFFBYONE, total > BigInt(bound),
                      total > BigInt(bound) + BigInt(1))) {
    return Status::ConstraintViolation("aggregate exceeds upper bound");
  }
  return crypto::ProveUpperBound(*pedersen_, total_cm, total, rand_mod_q,
                                 BigInt(bound), slack_bits, drbg_);
}

Result<RangeProof> DataOwner::AttestLowerBound(
    const PaillierCiphertext& total_value_ct,
    const PaillierCiphertext& total_rand_ct,
    const PedersenCommitment& total_cm, int64_t bound, size_t slack_bits) {
  PREVER_ASSIGN_OR_RETURN(
      auto totals, DecryptTotals(total_value_ct, total_rand_ct, total_cm));
  const auto& [total, rand_mod_q] = totals;
  if (total < BigInt(bound)) {
    return Status::ConstraintViolation("aggregate below lower bound");
  }
  return crypto::ProveLowerBound(*pedersen_, total_cm, total, rand_mod_q,
                                 BigInt(bound), slack_bits, drbg_);
}

EncryptedEngine::EncryptedEngine(DataOwner* owner, OrderingService* ordering,
                                 std::string group_field,
                                 std::string value_field,
                                 std::vector<RegulatedBound> bounds,
                                 size_t value_bits, uint64_t seed)
    : owner_(owner),
      ordering_(ordering),
      group_field_(std::move(group_field)),
      value_field_(std::move(value_field)),
      bounds_(std::move(bounds)),
      value_bits_(value_bits),
      producer_drbg_(seed) {}

Result<EncryptedEngine::SealedSubmission> EncryptedEngine::Seal(
    const Update& update) {
  auto group_it = update.fields.find(group_field_);
  auto value_it = update.fields.find(value_field_);
  if (group_it == update.fields.end() || value_it == update.fields.end()) {
    return Status::InvalidArgument("update lacks '" + group_field_ +
                                   "' or '" + value_field_ + "' field");
  }
  PREVER_ASSIGN_OR_RETURN(std::string group, group_it->second.AsString());
  PREVER_ASSIGN_OR_RETURN(int64_t value, value_it->second.AsInt64());
  SealedSubmission out;
  out.id = update.id;
  out.producer = update.producer;
  out.timestamp = update.timestamp;
  out.group = std::move(group);
  PREVER_ASSIGN_OR_RETURN(out.sealed,
                          owner_->Seal(value, value_bits_, producer_drbg_));
  return out;
}

Status EncryptedEngine::SubmitUpdate(const Update& update) {
  Result<SealedSubmission> sealed = [&] {
    PREVER_TRACE_SPAN(metrics_.crypto_ns());
    return Seal(update);
  }();
  if (!sealed.ok()) {
    metrics_.OnSubmit();
    return metrics_.Finish(sealed.status());
  }
  return SubmitSealed(*sealed);
}

bool EncryptedEngine::VerifyProducerRange(
    const SealedSubmission& submission) const {
  return crypto::VerifyRange(owner_->pedersen(), submission.sealed.commitment,
                             submission.sealed.range_proof, value_bits_);
}

Status EncryptedEngine::SubmitSealed(const SealedSubmission& submission) {
  metrics_.OnSubmit();
  PREVER_TRACE_SPAN(metrics_.submit_ns());
  PREVER_CAUSAL_ROOT_SPAN(causal_root, obs::TraceStage::kSubmit, 0);
  // Manager-side check 1: the producer proved its hidden value is in range.
  bool range_ok;
  {
    PREVER_TRACE_SPAN(metrics_.crypto_ns());
    PREVER_CAUSAL_SPAN(causal_crypto, obs::TraceStage::kCrypto);
    range_ok = VerifyProducerRange(submission);
  }
  return FinishSealed(submission, range_ok);
}

Result<std::vector<EncryptedEngine::SealedSubmission>>
EncryptedEngine::SealBatch(const std::vector<Update>& updates) {
  std::vector<SealedSubmission> out;
  out.reserve(updates.size());
  for (const Update& update : updates) {
    PREVER_ASSIGN_OR_RETURN(SealedSubmission sealed, Seal(update));
    out.push_back(std::move(sealed));
  }
  return out;
}

Status EncryptedEngine::SubmitSealedBatch(
    const std::vector<SealedSubmission>& batch) {
  // Phase 1: all producer range proofs, fanned out across the pool. Each
  // check only reads immutable submission data and the (internally
  // synchronized) crypto caches, so iterations are independent.
  std::vector<char> range_ok(batch.size(), 0);
  {
    PREVER_TRACE_SPAN(metrics_.crypto_ns());
    auto verify_one = [&](size_t i) {
      range_ok[i] = VerifyProducerRange(batch[i]) ? 1 : 0;
    };
    if (pool_ != nullptr) {
      pool_->ParallelFor(batch.size(), verify_one);
    } else {
      for (size_t i = 0; i < batch.size(); ++i) verify_one(i);
    }
  }
  // Phase 2: attestation + store, serial and in batch order — the running
  // aggregates and the ledger are order-sensitive shared state. Ledger
  // appends ride the ordering pipeline's async window (group commit across
  // the batch) and the final Flush waits for quorum on all of them.
  Status first = Status::Ok();
  for (size_t i = 0; i < batch.size(); ++i) {
    metrics_.OnSubmit();
    Status s = [&] {
      PREVER_TRACE_SPAN(metrics_.submit_ns());
      PREVER_CAUSAL_ROOT_SPAN(causal_root, obs::TraceStage::kSubmit, i);
      return FinishSealed(batch[i], range_ok[i] != 0, /*async_ledger=*/true);
    }();
    if (!s.ok() && first.ok()) first = s;
  }
  Status flushed = ordering_->Flush();
  if (!flushed.ok() && first.ok()) first = flushed;
  return first;
}

Status EncryptedEngine::FinishSealed(const SealedSubmission& submission,
                                     bool range_ok, bool async_ledger) {
  const auto& pedersen = owner_->pedersen();
  const auto& pub = owner_->paillier_pub();
  if (PREVER_MUTATION(ENC_RANGE_PROOF_SKIP, !range_ok, false)) {
    return metrics_.Finish(
        Status::IntegrityViolation("producer range proof invalid"));
  }

  // Manager-side check 2: per regulated bound, aggregate homomorphically
  // over the public filter (group, window) INCLUDING the incoming value,
  // then demand an owner attestation tied to our own commitment product.
  const std::vector<SealedRow>& group_rows = rows_[submission.group];
  obs::ScopedSpan verify_span(metrics_.verify_ns());
  obs::TraceSpan causal_verify(obs::TraceStage::kVerify);
  for (const RegulatedBound& bound : bounds_) {
    PaillierCiphertext total_v = submission.sealed.value_ct;
    PaillierCiphertext total_r = submission.sealed.rand_ct;
    PedersenCommitment total_cm = submission.sealed.commitment;
    SimTime window_start = bound.window == 0 ? 0
                           : (bound.window >= submission.timestamp
                                  ? 0
                                  : submission.timestamp - bound.window);
    for (const SealedRow& row : group_rows) {
      if (bound.window != 0 &&
          (PREVER_MUTATION(ENC_WINDOW_START_INCLUSIVE,
                           row.timestamp <= window_start,
                           row.timestamp < window_start) ||
           PREVER_MUTATION(ENC_WINDOW_END_EXCLUSIVE,
                           row.timestamp > submission.timestamp,
                           row.timestamp >= submission.timestamp))) {
        continue;
      }
      total_v = crypto::PaillierAdd(pub, total_v, row.sealed.value_ct);
      total_r = crypto::PaillierAdd(pub, total_r, row.sealed.rand_ct);
      total_cm = crypto::PedersenAdd(pedersen, total_cm,
                                     row.sealed.commitment);
    }
    Result<RangeProof> attestation =
        bound.direction == constraint::BoundDirection::kUpper
            ? owner_->AttestUpperBound(total_v, total_r, total_cm,
                                       bound.bound, bound.slack_bits)
            : owner_->AttestLowerBound(total_v, total_r, total_cm,
                                       bound.bound, bound.slack_bits);
    if (!attestation.ok()) return metrics_.Finish(attestation.status());
    bool proof_ok =
        bound.direction == constraint::BoundDirection::kUpper
            ? crypto::VerifyUpperBound(pedersen, total_cm, *attestation,
                                       BigInt(bound.bound), bound.slack_bits)
            : crypto::VerifyLowerBound(pedersen, total_cm, *attestation,
                                       BigInt(bound.bound), bound.slack_bits);
    if (PREVER_MUTATION(ENC_ATTEST_ACCEPT, !proof_ok, false)) {
      return metrics_.Finish(
          Status::IntegrityViolation("owner bound attestation invalid"));
    }
  }
  verify_span.End();
  causal_verify.End();

  // Step 3: store the sealed row and ledger a content commitment. The
  // ledger entry binds id/group/time + ciphertext digests, never plaintext.
  PREVER_TRACE_SPAN(metrics_.ledger_ns());
  PREVER_CAUSAL_SPAN(causal_ledger, obs::TraceStage::kLedgerPhase);
  rows_[submission.group].push_back(
      SealedRow{submission.group, submission.timestamp, submission.sealed});
  BinaryWriter w;
  w.WriteString(submission.id);
  w.WriteString(submission.producer);
  w.WriteU64(submission.timestamp);
  w.WriteString(submission.group);
  w.WriteBytes(crypto::Sha256::Hash(submission.sealed.value_ct.c.ToBytes()));
  w.WriteBytes(crypto::Sha256::Hash(submission.sealed.commitment.c.ToBytes()));
  Status ordered =
      async_ledger
          ? ordering_->SubmitAsync(w.Take(), submission.timestamp).status()
          : ordering_->Append(w.Take(), submission.timestamp);
  return metrics_.Finish(ordered);
}

size_t EncryptedEngine::NumRows(const std::string& group) const {
  auto it = rows_.find(group);
  return it == rows_.end() ? 0 : it->second.size();
}

}  // namespace prever::core
