#ifndef PREVER_CORE_PUBLIC_DATA_ENGINE_H_
#define PREVER_CORE_PUBLIC_DATA_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "constraint/constraint.h"
#include "constraint/linear.h"
#include "constraint/verifier.h"
#include "core/engine.h"
#include "core/engine_metrics.h"
#include "core/ordering.h"
#include "crypto/zkp.h"
#include "pir/xor_pir.h"
#include "storage/database.h"

namespace prever::core {

/// A zero-knowledge attestation attached to an update in place of a private
/// field (§2.2: the vaccination record stays private; the manager verifies
/// a predicate about it). The commitment hides the value; the proof shows
/// it satisfies the declared bound.
struct PrivateAttestation {
  std::string field;  ///< Which private requirement this discharges.
  crypto::PedersenCommitment commitment;
  crypto::RangeProof proof;
};

/// A requirement the manager imposes on a private update field.
struct AttestationRequirement {
  std::string field;
  constraint::BoundDirection direction = constraint::BoundDirection::kLower;
  int64_t bound = 0;     ///< E.g. doses >= 2.
  size_t slack_bits = 8;
};

/// RC3 engine: public data, private updates. The manager checks
///  (a) public constraints over the public database and the update's public
///      fields — evaluated directly, and
///  (b) zero-knowledge attestations for the update's private requirements.
/// Producers can consult the public database without revealing what they
/// read via the engine's two-server XOR-PIR snapshot (the paper's PIR
/// lineage for RC3).
class PublicDataEngine : public UpdateEngine {
 public:
  PublicDataEngine(storage::Database* db,
                   const constraint::ConstraintCatalog* public_catalog,
                   std::vector<AttestationRequirement> requirements,
                   OrderingService* ordering,
                   const crypto::PedersenParams& pedersen);

  /// Producer side: build the attestation for a private value. Fails (with
  /// ConstraintViolation) when the value cannot satisfy the requirement —
  /// the producer learns it would be rejected without exposing the value.
  Result<PrivateAttestation> Attest(const AttestationRequirement& requirement,
                                    int64_t private_value, crypto::Drbg& drbg);

  /// A submission = public update + one attestation per requirement.
  struct Submission {
    Update update;  ///< fields contain ONLY public fields.
    std::vector<PrivateAttestation> attestations;
  };

  Status Submit(const Submission& submission);
  /// Base-class path: only valid when there are no attestation
  /// requirements (purely public constraints).
  Status SubmitUpdate(const Update& update) override;

  EngineStats stats() const override { return metrics_.Snapshot(); }
  const char* name() const override { return "public-data-rc3"; }

  /// Builds (or refreshes) a two-server PIR snapshot of `table`; rows are
  /// serialized to fixed-size records. Producers read through
  /// XorPirClient::Fetch against the returned servers.
  struct PirSnapshot {
    std::unique_ptr<pir::XorPirServer> server0;
    std::unique_ptr<pir::XorPirServer> server1;
    size_t record_size = 0;
  };
  Result<PirSnapshot> BuildPirSnapshot(const std::string& table,
                                       size_t record_size) const;

  const storage::Database& db() const { return *db_; }
  const std::vector<AttestationRequirement>& requirements() const {
    return requirements_;
  }

 private:
  storage::Database* db_;
  const constraint::ConstraintCatalog* public_catalog_;
  std::vector<AttestationRequirement> requirements_;
  OrderingService* ordering_;
  const crypto::PedersenParams* pedersen_;
  constraint::CompiledVerifier verifier_;
  EngineMetrics metrics_{"public-data-rc3"};
};

}  // namespace prever::core

#endif  // PREVER_CORE_PUBLIC_DATA_ENGINE_H_
