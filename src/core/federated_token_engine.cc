#include "core/federated_token_engine.h"

#include "obs/tracing.h"

#include "mutate/mutation.h"

namespace prever::core {

FederatedTokenEngine::FederatedTokenEngine(
    std::vector<FederatedPlatform*> platforms,
    token::TokenAuthority* authority, OrderingService* ordering,
    std::string cost_field)
    : platforms_(std::move(platforms)),
      authority_(authority),
      ordering_(ordering),
      cost_field_(std::move(cost_field)) {}

token::TokenWallet& FederatedTokenEngine::WalletOf(
    const std::string& producer) {
  auto it = wallets_.find(producer);
  if (it == wallets_.end()) {
    it = wallets_
             .emplace(producer, std::make_unique<token::TokenWallet>(
                                    authority_->public_key(),
                                    next_wallet_seed_++))
             .first;
  }
  return *it->second;
}

Status FederatedTokenEngine::SubmitVia(size_t platform_index,
                                       const Update& update) {
  return SubmitViaInternal(platform_index, update, /*async_ledger=*/false);
}

Status FederatedTokenEngine::SyncSpentFromLedger() {
  const ledger::LedgerDb& led = ordering_->Ledger();
  PREVER_RETURN_IF_ERROR(led.Audit());
  spent_.clear();
  for (uint64_t seq = 0; seq < led.size(); ++seq) {
    PREVER_ASSIGN_OR_RETURN(ledger::LedgerEntry entry, led.GetEntry(seq));
    spent_.insert(entry.payload);
  }
  return Status::Ok();
}

Status FederatedTokenEngine::SubmitBatchVia(size_t platform_index,
                                            const std::vector<Update>& updates) {
  Status first = Status::Ok();
  for (const Update& update : updates) {
    Status s = SubmitViaInternal(platform_index, update, /*async_ledger=*/true);
    if (!s.ok() && first.ok()) first = s;
  }
  Status flushed = ordering_->Flush();
  if (!flushed.ok() && first.ok()) first = flushed;
  return first;
}

Status FederatedTokenEngine::SubmitViaInternal(size_t platform_index,
                                               const Update& update,
                                               bool async_ledger) {
  metrics_.OnSubmit();
  PREVER_TRACE_SPAN(metrics_.submit_ns());
  PREVER_CAUSAL_ROOT_SPAN(causal_root, obs::TraceStage::kSubmit, 0);
  if (platform_index >= platforms_.size()) {
    return metrics_.Finish(Status::InvalidArgument("no such platform"));
  }
  auto cost_it = update.fields.find(cost_field_);
  if (cost_it == update.fields.end()) {
    return metrics_.Finish(Status::InvalidArgument(
        "update lacks cost field '" + cost_field_ + "'"));
  }
  auto cost = cost_it->second.AsInt64();
  if (!cost.ok() || *cost < 0) {
    return metrics_.Finish(
        Status::InvalidArgument("cost must be a non-negative int"));
  }

  obs::ScopedSpan token_span(metrics_.token_ns());
  obs::TraceSpan causal_token(obs::TraceStage::kToken);
  // Producer side: ensure the wallet holds `cost` tokens, withdrawing the
  // shortfall. A failed withdrawal IS the regulation rejecting the update:
  // the budget encodes the bound.
  token::TokenWallet& wallet = WalletOf(update.producer);
  size_t need = static_cast<size_t>(*cost);
  if (wallet.NumTokens() < need) {
    auto got = wallet.Withdraw(*authority_, update.producer,
                               need - wallet.NumTokens(), update.timestamp);
    if (!got.ok()) return metrics_.Finish(got.status());
    if (wallet.NumTokens() < need) {
      return metrics_.Finish(Status::ConstraintViolation(
          "token budget exhausted: regulation limit reached for '" +
          update.producer + "'"));
    }
  }

  // Platform side: verify and spend each token against the shared ledger
  // state. Wallet draws mutate the wallet, so they run serially up front;
  // the signature checks are independent pure computations and fan out
  // across the pool when one is set. Double-spend checks read the shared
  // spent-set and stay serial.
  std::vector<token::Token> to_spend;
  to_spend.reserve(need);
  for (size_t i = 0; i < need; ++i) {
    auto t = wallet.Take();
    if (!t.ok()) return metrics_.Finish(t.status());
    to_spend.push_back(std::move(*t));
  }
  std::vector<char> sig_ok(need, 0);
  auto verify_one = [&](size_t i) {
    sig_ok[i] = crypto::RsaVerify(authority_->public_key(),
                                  to_spend[i].serial, to_spend[i].signature)
                    ? 1
                    : 0;
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(need, verify_one);
  } else {
    for (size_t i = 0; i < need; ++i) verify_one(i);
  }
  for (size_t i = 0; i < need; ++i) {
    if (PREVER_MUTATION(FTE_SIG_ACCEPT, !sig_ok[i], false)) {
      return metrics_.Finish(
          Status::IntegrityViolation("token signature invalid"));
    }
    if (PREVER_MUTATION(FTE_DOUBLE_SPEND_SKIP,
                        spent_.count(to_spend[i].serial) != 0, false)) {
      return metrics_.Finish(
          Status::AlreadyExists("token double spend detected"));
    }
  }
  token_span.End();
  causal_token.End();

  // Apply locally, then order the spent serials + update digest so every
  // platform learns the tokens are burned (and nothing else).
  PREVER_TRACE_SPAN(metrics_.ledger_ns());
  PREVER_CAUSAL_SPAN(causal_ledger, obs::TraceStage::kLedgerPhase);
  FederatedPlatform* home = platforms_[platform_index];
  Status applied = home->db.Apply(update.mutation);
  if (!applied.ok()) return metrics_.Finish(applied);
  for (const token::Token& t : to_spend) {
    spent_.insert(t.serial);
    Status ordered =
        async_ledger
            ? ordering_->SubmitAsync(t.serial, update.timestamp).status()
            : ordering_->Append(t.serial, update.timestamp);
    if (!ordered.ok()) return metrics_.Finish(ordered);
    ++tokens_spent_;
  }
  return metrics_.Finish(Status::Ok());
}

}  // namespace prever::core
