#include "core/dp_index.h"

#include <cmath>

namespace prever::core {

DpAggregateIndex::DpAggregateIndex(double epsilon_total,
                                   double epsilon_per_release,
                                   double sensitivity,
                                   DpExhaustionPolicy policy, uint64_t seed)
    : epsilon_total_(epsilon_total),
      epsilon_per_release_(epsilon_per_release),
      sensitivity_(sensitivity),
      policy_(policy),
      rng_(seed) {}

double DpAggregateIndex::SampleLaplace(double scale) {
  // Inverse-CDF sampling: u uniform in (-1/2, 1/2),
  // x = -scale * sgn(u) * ln(1 - 2|u|).
  double u = rng_.NextDouble() - 0.5;
  double sign = u < 0 ? -1.0 : 1.0;
  double mag = std::abs(u);
  // Guard the log argument away from 0.
  double arg = std::max(1.0 - 2.0 * mag, 1e-300);
  return -scale * sign * std::log(arg);
}

Result<DpAggregateIndex::Release> DpAggregateIndex::Update(int64_t value) {
  true_value_ += static_cast<double>(value);
  double epsilon_this_release;
  if (policy_ == DpExhaustionPolicy::kRefuse) {
    if (epsilon_spent_ + epsilon_per_release_ > epsilon_total_) {
      return Status::Unavailable(
          "privacy budget exhausted: no further releases possible");
    }
    epsilon_this_release = epsilon_per_release_;
  } else {
    // kDegrade: spend half of whatever remains — releases never stop but
    // epsilon per release decays geometrically and noise explodes.
    double remaining = epsilon_total_ - epsilon_spent_;
    epsilon_this_release = remaining / 2.0;
    if (epsilon_this_release <= 0) {
      return Status::Unavailable("privacy budget fully consumed");
    }
  }
  epsilon_spent_ += epsilon_this_release;
  ++releases_;
  Release out;
  out.noise_scale = sensitivity_ / epsilon_this_release;
  out.noisy_value = true_value_ + SampleLaplace(out.noise_scale);
  out.epsilon_spent_total = epsilon_spent_;
  return out;
}

}  // namespace prever::core
