#include "core/participant.h"

namespace prever::core {

const char* RoleName(Role role) {
  switch (role) {
    case Role::kDataProducer:
      return "data-producer";
    case Role::kDataOwner:
      return "data-owner";
    case Role::kDataManager:
      return "data-manager";
    case Role::kAuthority:
      return "authority";
  }
  return "unknown";
}

const char* TrustLevelName(TrustLevel level) {
  switch (level) {
    case TrustLevel::kHonest:
      return "honest";
    case TrustLevel::kHonestButCurious:
      return "honest-but-curious";
    case TrustLevel::kCovert:
      return "covert";
    case TrustLevel::kMalicious:
      return "malicious";
  }
  return "unknown";
}

Status ParticipantRegistry::Add(Participant participant) {
  if (participant.id.empty()) {
    return Status::InvalidArgument("participant id must not be empty");
  }
  auto [it, inserted] =
      participants_.emplace(participant.id, std::move(participant));
  if (!inserted) {
    return Status::AlreadyExists("participant '" + it->first +
                                 "' already registered");
  }
  return Status::Ok();
}

Result<const Participant*> ParticipantRegistry::Find(
    const std::string& id) const {
  auto it = participants_.find(id);
  if (it == participants_.end()) {
    return Status::NotFound("no participant '" + id + "'");
  }
  return &it->second;
}

bool ParticipantRegistry::HasRole(const std::string& id, Role role) const {
  auto it = participants_.find(id);
  return it != participants_.end() && it->second.HasRole(role);
}

}  // namespace prever::core
