#ifndef PREVER_CORE_SIGNED_UPDATE_H_
#define PREVER_CORE_SIGNED_UPDATE_H_

#include <map>
#include <memory>
#include <string>

#include "core/engine.h"
#include "crypto/rsa.h"

namespace prever::core {

/// Producer authentication for updates. §3.2: "an update may involve
/// several participants including at least a data producer" — a manager
/// must be able to tell that an update really originates from the claimed
/// producer (otherwise one worker could burn another worker's regulation
/// budget). Updates are signed over their canonical encoding.
struct SignedUpdate {
  Update update;
  Bytes signature;  ///< Producer's FDH-RSA signature over update.Encode().
};

/// Maps producer ids to their registered public keys.
class ProducerKeyDirectory {
 public:
  Status Register(const std::string& producer, crypto::RsaPublicKey key);
  Result<const crypto::RsaPublicKey*> Find(const std::string& producer) const;
  size_t size() const { return keys_.size(); }

 private:
  std::map<std::string, crypto::RsaPublicKey> keys_;
};

/// Producer-side signing.
SignedUpdate SignUpdate(Update update, const crypto::RsaKeyPair& key);

/// Manager-side check: the signature must verify under the key registered
/// for `update.producer`. PermissionDenied for unknown producers,
/// IntegrityViolation for bad signatures.
Status VerifyUpdateSignature(const SignedUpdate& signed_update,
                             const ProducerKeyDirectory& directory);

/// Decorator: authenticates every update before delegating to any engine.
/// Composes with all five engines (the pipeline's step 1-to-2 boundary).
class AuthenticatingEngine : public UpdateEngine {
 public:
  AuthenticatingEngine(UpdateEngine* inner,
                       const ProducerKeyDirectory* directory)
      : inner_(inner), directory_(directory) {}

  /// Preferred entry point.
  Status SubmitSigned(const SignedUpdate& signed_update);

  /// Unsigned submissions are rejected outright.
  Status SubmitUpdate(const Update& update) override;

  EngineStats stats() const override { return inner_->stats(); }
  const char* name() const override { return "authenticating"; }

  uint64_t rejected_signatures() const { return rejected_signatures_; }

 private:
  UpdateEngine* inner_;
  const ProducerKeyDirectory* directory_;
  uint64_t rejected_signatures_ = 0;
};

}  // namespace prever::core

#endif  // PREVER_CORE_SIGNED_UPDATE_H_
