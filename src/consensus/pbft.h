#ifndef PREVER_CONSENSUS_PBFT_H_
#define PREVER_CONSENSUS_PBFT_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "consensus/metrics.h"
#include "net/sim_net.h"

namespace prever::consensus {

/// Invoked on every replica, in sequence order, exactly once per committed
/// command.
using CommitCallback =
    std::function<void(uint64_t sequence, const Bytes& command)>;

/// Fault modes for adversarial testing. A Byzantine replica deviates from
/// the protocol; PBFT must stay safe (no divergence) and, with at most
/// f = (n-1)/3 faults, live.
enum class PbftFaultMode {
  kHonest,
  kSilent,       ///< Crashed / mute replica.
  kEquivocate,   ///< As primary, proposes different commands to different
                 ///< replicas for the same sequence number.
};

struct PbftConfig {
  size_t num_replicas = 4;
  SimTime view_change_timeout = 200 * kMillisecond;
  /// High-watermark window (PBFT §4.2's [h, H]): the primary keeps at most
  /// this many sequence numbers beyond the last executed one in flight, so
  /// up to `high_watermark_window` instances run the three phases
  /// concurrently. Requests beyond the window are deferred and proposed as
  /// execution advances the low watermark. Backups accept pre-prepares up to
  /// 2x the window past their own execution point (their view of the low
  /// watermark may lag the primary's).
  uint64_t high_watermark_window = 128;
  /// Castro–Liskov stable checkpoints (§4.3): every `checkpoint_interval`
  /// executions a replica broadcasts a checkpoint digest; 2f+1 matching
  /// digests advance the stable low watermark and garbage-collect the
  /// message log below it. 0 disables checkpointing (legacy behavior).
  uint64_t checkpoint_interval = 0;
  /// Lets a restarted or lagging replica fetch a peer's stable checkpoint
  /// plus the executed suffix and catch up (§4.3's state transfer).
  bool enable_state_transfer = false;
};

/// One PBFT replica (Castro–Liskov three-phase protocol over the simulated
/// network): pre-prepare → prepare (2f matching) → commit (2f+1 matching),
/// with view changes on primary failure. With checkpoint_interval set, the
/// replica also runs §4.3 stable checkpoints: 2f+1 matching checkpoint
/// digests advance the low watermark, garbage-collect the message log below
/// it, and anchor state transfer for restarted/lagging replicas. Commands
/// travel in full rather than digest-only.
class PbftReplica {
 public:
  /// Snapshot of the application state at the current execution point;
  /// embedded in checkpoint blobs and shipped during state transfer.
  using StateSnapshotFn = std::function<Bytes()>;
  /// Installs a transferred application snapshot taken at `sequence`.
  using StateInstallFn =
      std::function<void(uint64_t sequence, const Bytes& app_state)>;

  PbftReplica(net::NodeId id, const PbftConfig& config, net::SimNetwork* net);

  net::NodeId id() const { return id_; }
  uint64_t view() const { return view_; }
  uint64_t num_executed() const { return num_executed_; }
  uint64_t last_executed() const { return last_executed_; }
  bool IsPrimary() const { return view_ % config_.num_replicas == id_; }
  bool crashed() const { return crashed_; }

  /// Stable-checkpoint observables (0 / empty before the first one).
  uint64_t stable_checkpoint_seq() const { return stable_seq_; }
  const Bytes& stable_checkpoint_blob() const { return stable_blob_; }
  /// Message-log occupancy; bounded by checkpoint_interval + watermarks
  /// once checkpointing runs.
  size_t log_slots() const { return log_.size(); }
  bool HasSlot(uint64_t seq) const { return log_.count(seq) != 0; }

  void SetCommitCallback(CommitCallback cb) { commit_cb_ = std::move(cb); }
  void SetFaultMode(PbftFaultMode mode) { fault_mode_ = mode; }
  void SetStateCallbacks(StateSnapshotFn snapshot, StateInstallFn install) {
    state_snapshot_ = std::move(snapshot);
    state_install_ = std::move(install);
  }

  /// Optional instrumentation (shared across the cluster); may be null.
  void SetMetrics(ConsensusMetrics* metrics) { metrics_ = metrics; }

  /// Network ingress (registered with SimNetwork).
  void OnMessage(const net::Message& msg);

  /// Client request entry point (clients broadcast to all replicas; the
  /// primary proposes, backups arm a view-change timer).
  void OnClientRequest(const Bytes& command);

  /// Crash-stop: wipes all volatile protocol state (message log, votes,
  /// queues) and mutes the replica until Restart. The view number persists,
  /// modeling the durable view counter.
  void Crash();

  /// Restarts through the recovery path: installs `checkpoint_blob` (a
  /// stable-checkpoint blob saved durably before the crash; empty = cold
  /// start) and, when enabled, requests state transfer from peers to cover
  /// the executions past the checkpoint.
  void Restart(const Bytes& checkpoint_blob);

 public:
  /// A prepared-but-unexecuted slot carried across a view change. Public so
  /// the wire codec helpers can name it.
  struct PreparedEntry {
    uint64_t seq = 0;
    uint64_t view = 0;
    Bytes command;
  };

 private:
  struct SlotState {
    uint64_t view = 0;
    Bytes digest;
    Bytes command;
    bool pre_prepared = false;
    /// Votes per digest so an equivocating primary cannot pool quorums
    /// across conflicting proposals.
    std::map<Bytes, std::set<net::NodeId>> prepares;
    std::map<Bytes, std::set<net::NodeId>> commits;
    bool sent_commit = false;
    bool executed = false;
  };

  size_t f() const { return (config_.num_replicas - 1) / 3; }
  size_t quorum2f() const { return 2 * f(); }
  size_t quorum2f1() const { return 2 * f() + 1; }

  void SendMsg(net::NodeId to, uint32_t type, const Bytes& payload);
  void Broadcast(uint32_t type, const Bytes& payload);
  void HandlePrePrepare(const net::Message& msg);
  void HandlePrepare(const net::Message& msg);
  void HandleCommit(const net::Message& msg);
  void HandleViewChange(const net::Message& msg);
  void HandleNewView(const net::Message& msg);
  void HandleCheckpoint(const net::Message& msg);
  void HandleFetchState(const net::Message& msg);
  void HandleStateResponse(const net::Message& msg);

  void Propose(const Bytes& command);
  void MaybeSendCommit(uint64_t seq);
  void TryExecute();
  void ExecuteLoop();
  void DrainDeferred();
  Bytes BuildCheckpointBlob() const;
  void InstallCheckpointBlob(const Bytes& blob);
  void MaybeCreateCheckpoint();
  void MaybeStabilize(uint64_t seq);
  void CollectGarbage();
  void RequestStateTransfer();
  void TryInstallState();
  void ExecuteCertifiedSuffix();
  void ArmRequestTimer(const Bytes& digest);
  void Stash(const net::Message& msg);
  void StartViewChange(uint64_t new_view);
  void MaybeBecomeNewPrimary(uint64_t new_view);
  void InstallNewView(uint64_t new_view,
                      const std::vector<PreparedEntry>& entries);

  SlotState& Slot(uint64_t seq) { return log_[seq]; }

  net::NodeId id_;
  PbftConfig config_;
  net::SimNetwork* net_;
  CommitCallback commit_cb_;
  StateSnapshotFn state_snapshot_;
  StateInstallFn state_install_;
  PbftFaultMode fault_mode_ = PbftFaultMode::kHonest;
  ConsensusMetrics* metrics_ = nullptr;

  bool crashed_ = false;
  uint64_t view_ = 0;
  bool view_changing_ = false;
  uint64_t next_seq_ = 1;       // Primary's next proposal number.
  uint64_t last_executed_ = 0;  // Highest contiguously executed seq.
  uint64_t num_executed_ = 0;
  std::map<uint64_t, SlotState> log_;
  std::set<Bytes> seen_requests_;    // Digests proposed (primary dedup).
  /// Requests this primary received while its watermark window was full,
  /// in arrival order; drained after each execution. Cleared on view change
  /// (the commands stay in pending_requests_, so the new primary re-proposes
  /// them).
  std::deque<Bytes> deferred_;
  std::set<Bytes> deferred_digests_;  // Dedup for deferred_.
  std::set<Bytes> executed_digests_; // For timer cancellation.
  std::map<Bytes, bool> pending_timers_;  // digest -> armed.
  std::map<Bytes, Bytes> pending_requests_;  // digest -> command.
  // View-change bookkeeping: new_view -> sender -> prepared entries.
  std::map<uint64_t, std::map<net::NodeId, std::vector<PreparedEntry>>>
      view_change_entries_;
  uint64_t installed_new_view_ = 0;  // Highest NewView this primary sent.
  /// Normal-phase messages that raced ahead of a view installation are
  /// stashed and replayed after InstallNewView (bounded to avoid unbounded
  /// growth under Byzantine spam).
  std::vector<net::Message> stashed_;

  // ---- Stable checkpoints & state transfer (§4.3) ----
  struct PendingCheckpoint {
    bool has_own = false;  ///< We produced our own blob at this seq.
    Bytes own_blob;
    Bytes own_digest;
    std::map<Bytes, std::set<net::NodeId>> votes;  // digest -> voters
  };
  /// A peer's reply to our fetch-state request, parsed.
  struct StateResponse {
    uint64_t view = 0;
    uint64_t stable_seq = 0;
    Bytes stable_blob;
    std::map<uint64_t, Bytes> suffix;  // seq -> command (executed).
  };

  std::map<uint64_t, PendingCheckpoint> checkpoints_;
  uint64_t stable_seq_ = 0;
  Bytes stable_blob_;
  Bytes stable_digest_;
  uint64_t max_seen_checkpoint_seq_ = 0;
  std::map<net::NodeId, StateResponse> state_responses_;
  bool fetch_inflight_ = false;
};

/// Convenience wrapper owning n replicas wired to one SimNetwork, plus the
/// client side (broadcast submission and commit counting).
class PbftCluster {
 public:
  PbftCluster(const PbftConfig& config, net::SimNetwork* net);

  /// Broadcasts a client request to all replicas.
  void Submit(const Bytes& command);

  PbftReplica& replica(size_t i) { return *replicas_[i]; }
  size_t size() const { return replicas_.size(); }

  /// Sets one callback invoked per replica commit (replica id, seq, cmd).
  void SetCommitCallback(
      std::function<void(net::NodeId, uint64_t, const Bytes&)> cb);

  /// Commands executed by replica i, in order.
  const std::vector<Bytes>& ExecutedBy(size_t i) const {
    return executed_[i];
  }

  /// True when at least `quorum` replicas executed at least `count` commands.
  bool ReachedCommitCount(uint64_t count, size_t quorum) const;

 private:
  std::unique_ptr<ConsensusMetrics> metrics_;
  std::vector<std::unique_ptr<PbftReplica>> replicas_;
  std::vector<std::vector<Bytes>> executed_;
};

}  // namespace prever::consensus

#endif  // PREVER_CONSENSUS_PBFT_H_
