#ifndef PREVER_CONSENSUS_RAFT_H_
#define PREVER_CONSENSUS_RAFT_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "consensus/metrics.h"
#include "net/sim_net.h"

namespace prever::consensus {

/// Raft (the engineerable Paxos-family protocol) serves as the paper's §6
/// crash-fault-tolerant comparator: one round-trip to a majority per commit,
/// versus PBFT's three phases and 3f+1 quorums.
struct RaftConfig {
  size_t num_replicas = 3;
  SimTime election_timeout_min = 150 * kMillisecond;
  SimTime election_timeout_max = 300 * kMillisecond;
  SimTime heartbeat_interval = 50 * kMillisecond;
  uint64_t seed = 7;  ///< Randomized election timeouts.
};

class RaftReplica {
 public:
  enum class Role { kFollower, kCandidate, kLeader };

  using ApplyCallback =
      std::function<void(uint64_t index, const Bytes& command)>;
  /// Invoked when an InstallSnapshot replaces this replica's state below
  /// `index` with the leader's snapshot blob (app-defined contents).
  using SnapshotInstaller =
      std::function<void(uint64_t index, const Bytes& blob)>;

  RaftReplica(net::NodeId id, const RaftConfig& config, net::SimNetwork* net,
              uint64_t seed);

  net::NodeId id() const { return id_; }
  Role role() const { return role_; }
  uint64_t term() const { return term_; }
  uint64_t commit_index() const { return commit_index_; }
  /// Logical log length (last log index); includes compacted entries.
  size_t log_size() const { return snapshot_index_ + log_.size(); }
  /// Entries physically held in memory (bounded by the compaction interval).
  size_t physical_log_entries() const { return log_.size(); }
  bool crashed() const { return crashed_; }
  uint64_t snapshot_index() const { return snapshot_index_; }
  uint64_t snapshot_term() const { return snapshot_term_; }
  const Bytes& snapshot_blob() const { return snapshot_blob_; }

  /// Invariant-checker accessors (1-based logical log indices). TermAt
  /// returns 0 and CommandAt returns nullptr for out-of-range indices;
  /// compacted entries (index <= snapshot_index) have no command and only
  /// the snapshot boundary's term is retained.
  uint64_t TermAt(uint64_t index) const {
    if (index == snapshot_index_) return snapshot_term_;
    if (index < snapshot_index_ || index > LastIndex()) return 0;
    return log_[index - snapshot_index_ - 1].term;
  }
  const Bytes* CommandAt(uint64_t index) const {
    if (index <= snapshot_index_ || index > LastIndex()) return nullptr;
    return &log_[index - snapshot_index_ - 1].command;
  }

  void SetApplyCallback(ApplyCallback cb) { apply_cb_ = std::move(cb); }
  void SetSnapshotInstaller(SnapshotInstaller cb) {
    snapshot_installer_ = std::move(cb);
  }

  /// Optional instrumentation (shared across the cluster); may be null.
  void SetMetrics(ConsensusMetrics* metrics) { metrics_ = metrics; }

  /// Starts timers; call once after all replicas exist.
  void Start();

  /// Leader-side client submission; NotSupported if not leader.
  Status Submit(const Bytes& command);

  void OnMessage(const net::Message& msg);

  /// Crash-stop: drops all state transitions until Restart. Volatile state
  /// (role, leadership) resets on restart; term/vote/log persist, modeling
  /// durable storage.
  void Crash();
  void Restart();

  /// Restart through the durable-recovery path: rejoin as a follower and
  /// re-apply committed entries above `applied_floor` (the highest index the
  /// caller's durable state already covers; clamped to [snapshot, commit]).
  /// Re-delivery above the floor is at-least-once — the apply callback must
  /// deduplicate, which the ordering layer's batch-id set does.
  void Recover(uint64_t applied_floor);

  /// App-driven log compaction (§7 snapshotting): drops entries at or below
  /// `index` (clamped to the applied prefix) and retains `app_blob` as the
  /// snapshot the leader ships to followers whose next index was truncated
  /// away. Returns bytes reclaimed from the in-memory log.
  Result<uint64_t> CompactTo(uint64_t index, const Bytes& app_blob);

 private:
  struct LogEntry {
    uint64_t term = 0;
    Bytes command;
  };

  size_t Majority() const { return config_.num_replicas / 2 + 1; }

  void SendMsg(net::NodeId to, uint32_t type, const Bytes& payload);
  void BecomeFollower(uint64_t term);
  void StartElection();
  void BecomeLeader();
  void SendAppendEntries(net::NodeId to);
  void BroadcastAppendEntries();
  void AdvanceCommitIndex();
  void ApplyCommitted();
  void ArmElectionTimer();
  void ArmHeartbeatTimer();

  void SendInstallSnapshot(net::NodeId to);

  void HandleRequestVote(const net::Message& msg);
  void HandleVoteReply(const net::Message& msg);
  void HandleAppendEntries(const net::Message& msg);
  void HandleAppendReply(const net::Message& msg);
  void HandleInstallSnapshot(const net::Message& msg);

  uint64_t LastIndex() const { return snapshot_index_ + log_.size(); }
  uint64_t LastLogTerm() const {
    return log_.empty() ? snapshot_term_ : log_.back().term;
  }

  net::NodeId id_;
  RaftConfig config_;
  net::SimNetwork* net_;
  Rng rng_;
  ApplyCallback apply_cb_;
  SnapshotInstaller snapshot_installer_;
  ConsensusMetrics* metrics_ = nullptr;

  bool crashed_ = false;
  Role role_ = Role::kFollower;
  uint64_t term_ = 0;
  int64_t voted_for_ = -1;
  // Compacted prefix: log_[0] holds logical index snapshot_index_ + 1.
  uint64_t snapshot_index_ = 0;
  uint64_t snapshot_term_ = 0;
  Bytes snapshot_blob_;
  std::vector<LogEntry> log_;       // 1-based logical indexing via helpers.
  uint64_t commit_index_ = 0;
  uint64_t last_applied_ = 0;
  std::set<net::NodeId> votes_;
  std::vector<uint64_t> next_index_;
  std::vector<uint64_t> match_index_;
  uint64_t timer_epoch_ = 0;  // Invalidates stale scheduled timers.
};

/// Owns n replicas over one SimNetwork and provides the client view.
class RaftCluster {
 public:
  RaftCluster(const RaftConfig& config, net::SimNetwork* net);

  RaftReplica& replica(size_t i) { return *replicas_[i]; }
  size_t size() const { return replicas_.size(); }

  /// Current leader, or error if none elected yet.
  Result<RaftReplica*> Leader();

  /// Submits via the current leader.
  Status Submit(const Bytes& command);

  const std::vector<Bytes>& AppliedBy(size_t i) const { return applied_[i]; }

 private:
  std::unique_ptr<ConsensusMetrics> metrics_;
  std::vector<std::unique_ptr<RaftReplica>> replicas_;
  std::vector<std::vector<Bytes>> applied_;
};

}  // namespace prever::consensus

#endif  // PREVER_CONSENSUS_RAFT_H_
