#include "consensus/raft.h"

#include <algorithm>
#include <cstddef>

#include "common/serial.h"
#include "mutate/mutation.h"
#include "obs/registry.h"
#include "obs/tracing.h"

namespace prever::consensus {

namespace {

enum RaftMsgType : uint32_t {
  kRequestVote = 10,
  kVoteReply = 11,
  kAppendEntries = 12,
  kAppendReply = 13,
  kInstallSnapshot = 14,
};

obs::Counter& StateTransferBytesCounter() {
  static obs::Counter* c =
      obs::Registry::Default().GetCounter("prever_recovery_state_transfer_bytes");
  return *c;
}

obs::Counter& LogBytesReclaimedCounter() {
  static obs::Counter* c =
      obs::Registry::Default().GetCounter("prever_recovery_log_bytes_reclaimed");
  return *c;
}

}  // namespace

RaftReplica::RaftReplica(net::NodeId id, const RaftConfig& config,
                         net::SimNetwork* net, uint64_t seed)
    : id_(id),
      config_(config),
      net_(net),
      rng_(seed),
      next_index_(config.num_replicas, 1),
      match_index_(config.num_replicas, 0) {}

void RaftReplica::Start() { ArmElectionTimer(); }

void RaftReplica::Crash() {
  crashed_ = true;
  ++timer_epoch_;
}

void RaftReplica::Restart() {
  crashed_ = false;
  role_ = Role::kFollower;
  votes_.clear();
  ++timer_epoch_;
  ArmElectionTimer();
}

void RaftReplica::Recover(uint64_t applied_floor) {
  Restart();
  // The caller's durable state (checkpoint + journal) covers entries up to
  // applied_floor; everything committed above it is re-delivered through the
  // apply callback. The floor never drops below the snapshot (those commands
  // are gone from the log) and never exceeds what was actually committed.
  last_applied_ = std::max(snapshot_index_,
                           std::min(applied_floor, commit_index_));
  ApplyCommitted();
}

Result<uint64_t> RaftReplica::CompactTo(uint64_t index, const Bytes& app_blob) {
  // Never compact entries that have not been applied: their commands would
  // be unrecoverable before reaching the state machine.
  uint64_t bound = PREVER_MUTATION(RAFT_COMPACT_BEYOND_APPLIED,
                                   std::min(index, last_applied_),
                                   std::min(index, LastIndex()));
  if (bound <= snapshot_index_) return uint64_t{0};
  uint64_t reclaimed = 0;
  uint64_t drop = bound - snapshot_index_;
  for (uint64_t i = 0; i < drop; ++i) {
    reclaimed += sizeof(LogEntry) + log_[i].command.size();
  }
  snapshot_term_ = TermAt(bound);
  log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(drop));
  snapshot_index_ = bound;
  snapshot_blob_ = app_blob;
  LogBytesReclaimedCounter().Inc(reclaimed);
  return reclaimed;
}

void RaftReplica::ArmElectionTimer() {
  uint64_t epoch = ++timer_epoch_;
  SimTime span =
      config_.election_timeout_max - config_.election_timeout_min + 1;
  SimTime delay = config_.election_timeout_min + rng_.NextBelow(span);
  net_->ScheduleAfter(delay, [this, epoch] {
    if (crashed_ || epoch != timer_epoch_) return;
    if (role_ != Role::kLeader) StartElection();
  });
}

void RaftReplica::ArmHeartbeatTimer() {
  uint64_t epoch = timer_epoch_;
  net_->ScheduleAfter(config_.heartbeat_interval, [this, epoch] {
    if (crashed_ || epoch != timer_epoch_ || role_ != Role::kLeader) return;
    BroadcastAppendEntries();
    ArmHeartbeatTimer();
  });
}

void RaftReplica::BecomeFollower(uint64_t term) {
  term_ = term;
  role_ = Role::kFollower;
  voted_for_ = -1;
  votes_.clear();
  ArmElectionTimer();
}

void RaftReplica::StartElection() {
  role_ = Role::kCandidate;
  ++term_;
  voted_for_ = static_cast<int64_t>(id_);
  votes_ = {id_};
  ArmElectionTimer();  // Retry election if this one stalls.
  BinaryWriter w;
  w.WriteU64(term_);
  w.WriteU64(LastIndex());
  w.WriteU64(LastLogTerm());
  for (net::NodeId to = 0; to < config_.num_replicas; ++to) {
    if (to != id_) net_->Send(id_, to, kRequestVote, w.bytes());
  }
  if (PREVER_MUTATION(RAFT_VOTE_QUORUM_MINUS_ONE, votes_.size() >= Majority(),
                      votes_.size() + 1 >= Majority())) {
    BecomeLeader();  // 1-node cluster.
  }
}

void RaftReplica::BecomeLeader() {
  role_ = Role::kLeader;
  for (size_t i = 0; i < config_.num_replicas; ++i) {
    next_index_[i] = LastIndex() + 1;
    match_index_[i] = 0;
  }
  match_index_[id_] = LastIndex();
  ++timer_epoch_;  // Cancel election timers.
  BroadcastAppendEntries();
  ArmHeartbeatTimer();
}

Status RaftReplica::Submit(const Bytes& command) {
  if (crashed_) return Status::Unavailable("replica crashed");
  if (role_ != Role::kLeader) return Status::NotSupported("not the leader");
  log_.push_back(LogEntry{term_, command});
  match_index_[id_] = LastIndex();
  BroadcastAppendEntries();
  return Status::Ok();
}

void RaftReplica::BroadcastAppendEntries() {
  for (net::NodeId to = 0; to < config_.num_replicas; ++to) {
    if (to != id_) SendAppendEntries(to);
  }
}

void RaftReplica::SendAppendEntries(net::NodeId to) {
  if (next_index_[to] <= snapshot_index_) {
    // The entries the follower needs were compacted away: state transfer.
    SendInstallSnapshot(to);
    return;
  }
  uint64_t prev_index = next_index_[to] - 1;
  uint64_t prev_term = TermAt(prev_index);
  BinaryWriter w;
  w.WriteU64(term_);
  w.WriteU64(prev_index);
  w.WriteU64(prev_term);
  w.WriteU64(commit_index_);
  uint64_t count = LastIndex() - prev_index;
  w.WriteU32(static_cast<uint32_t>(count));
  for (uint64_t i = prev_index + 1; i <= LastIndex(); ++i) {
    const LogEntry& e = log_[i - snapshot_index_ - 1];
    w.WriteU64(e.term);
    w.WriteBytes(e.command);
  }
  net_->Send(id_, to, kAppendEntries, w.bytes());
  // Pipelining: optimistically advance next_index so entries submitted
  // before the reply arrives stream in follow-up AppendEntries instead of
  // waiting a full round trip. The reply's conflict hint walks it back if
  // the follower's log diverged.
  next_index_[to] = LastIndex() + 1;
}

void RaftReplica::SendInstallSnapshot(net::NodeId to) {
  BinaryWriter w;
  w.WriteU64(term_);
  w.WriteU64(snapshot_index_);
  w.WriteU64(snapshot_term_);
  w.WriteBytes(snapshot_blob_);
  net_->Send(id_, to, kInstallSnapshot, w.bytes());
  // Optimistic, like SendAppendEntries: stream the post-snapshot suffix
  // without waiting for the install acknowledgement.
  next_index_[to] = snapshot_index_ + 1;
}

void RaftReplica::OnMessage(const net::Message& msg) {
  if (crashed_) return;
  switch (msg.type) {
    case kRequestVote:
      HandleRequestVote(msg);
      break;
    case kVoteReply:
      HandleVoteReply(msg);
      break;
    case kAppendEntries:
      HandleAppendEntries(msg);
      break;
    case kAppendReply:
      HandleAppendReply(msg);
      break;
    case kInstallSnapshot:
      HandleInstallSnapshot(msg);
      break;
    default:
      break;
  }
}

void RaftReplica::HandleRequestVote(const net::Message& msg) {
  BinaryReader r(msg.payload);
  auto term = r.ReadU64();
  auto last_log_index = r.ReadU64();
  auto last_log_term = r.ReadU64();
  if (!term.ok() || !last_log_index.ok() || !last_log_term.ok()) return;

  if (*term > term_) BecomeFollower(*term);
  bool grant = false;
  if (*term == term_ &&
      (voted_for_ == -1 || voted_for_ == static_cast<int64_t>(msg.from))) {
    // Election restriction: candidate's log must be at least as up to date.
    bool up_to_date =
        *last_log_term > LastLogTerm() ||
        (*last_log_term == LastLogTerm() && *last_log_index >= LastIndex());
    if (PREVER_MUTATION(RAFT_ELECTION_RESTRICTION_SKIP, up_to_date, true)) {
      grant = true;
      voted_for_ = static_cast<int64_t>(msg.from);
      ArmElectionTimer();
    }
  }
  BinaryWriter w;
  w.WriteU64(term_);
  w.WriteBool(grant);
  net_->Send(id_, msg.from, kVoteReply, w.bytes());
}

void RaftReplica::HandleVoteReply(const net::Message& msg) {
  BinaryReader r(msg.payload);
  auto term = r.ReadU64();
  auto grant = r.ReadBool();
  if (!term.ok() || !grant.ok()) return;
  if (*term > term_) {
    BecomeFollower(*term);
    return;
  }
  if (role_ != Role::kCandidate || *term != term_ || !*grant) return;
  votes_.insert(msg.from);
  if (PREVER_MUTATION(RAFT_VOTE_QUORUM_MINUS_ONE, votes_.size() >= Majority(),
                      votes_.size() + 1 >= Majority())) {
    BecomeLeader();
  }
}

void RaftReplica::HandleAppendEntries(const net::Message& msg) {
  BinaryReader r(msg.payload);
  auto term = r.ReadU64();
  auto prev_index = r.ReadU64();
  auto prev_term = r.ReadU64();
  auto leader_commit = r.ReadU64();
  auto count = r.ReadU32();
  if (!term.ok() || !prev_index.ok() || !prev_term.ok() ||
      !leader_commit.ok() || !count.ok()) {
    return;
  }
  // Hop marker in the flight recorder: the message's propagated context
  // (installed by SimNetwork around delivery) ties this replication hop to
  // the transaction whose envelope rides in the entries.
  PREVER_CAUSAL_INSTANT(obs::TraceStage::kRaftAppendEntries, *count);

  bool success = false;
  if (PREVER_MUTATION(RAFT_STALE_TERM_ACCEPT, *term >= term_, true)) {
    if (*term > term_ || role_ != Role::kFollower) BecomeFollower(*term);
    ArmElectionTimer();
    // Log consistency check at prev_index. A prev_index at or below our
    // snapshot is implied to match: snapshots cover only committed entries.
    if (*prev_index <= snapshot_index_ ||
        (*prev_index <= LastIndex() &&
         PREVER_MUTATION(RAFT_LOG_MATCH_SKIP,
                         TermAt(*prev_index) == *prev_term, true))) {
      success = true;
      uint64_t index = *prev_index;
      for (uint32_t i = 0; i < *count; ++i) {
        auto entry_term = r.ReadU64();
        auto command = r.ReadBytes();
        if (!entry_term.ok() || !command.ok()) return;
        ++index;
        if (index <= snapshot_index_) continue;  // Covered by our snapshot.
        if (index <= LastIndex()) {
          if (TermAt(index) != *entry_term) {
            // Conflict: truncate the divergent suffix.
            log_.resize(index - 1 - snapshot_index_);
            log_.push_back(LogEntry{*entry_term, *command});
          }
        } else {
          log_.push_back(LogEntry{*entry_term, *command});
        }
      }
      if (*leader_commit > commit_index_) {
        commit_index_ = std::min<uint64_t>(*leader_commit, LastIndex());
        ApplyCommitted();
      }
    }
  }
  BinaryWriter w;
  w.WriteU64(term_);
  w.WriteBool(success);
  w.WriteU64(success ? *prev_index + *count : 0);  // New match index.
  // Conflict hint: on rejection the leader can rewind next_index straight
  // to our log end instead of decrementing one entry per round trip.
  uint64_t hint =
      std::min<uint64_t>(LastIndex(), *prev_index > 0 ? *prev_index - 1 : 0);
  w.WriteU64(hint);
  net_->Send(id_, msg.from, kAppendReply, w.bytes());
}

void RaftReplica::HandleAppendReply(const net::Message& msg) {
  BinaryReader r(msg.payload);
  auto term = r.ReadU64();
  auto success = r.ReadBool();
  auto match = r.ReadU64();
  auto hint = r.ReadU64();  // Absent in old-format replies; optional.
  if (!term.ok() || !success.ok() || !match.ok()) return;
  if (*term > term_) {
    BecomeFollower(*term);
    return;
  }
  if (role_ != Role::kLeader || *term != term_) return;
  if (*success) {
    match_index_[msg.from] = std::max(match_index_[msg.from], *match);
    // next_index was optimistically advanced at send time; never move it
    // backwards on a stale success reply.
    next_index_[msg.from] =
        std::max(next_index_[msg.from], match_index_[msg.from] + 1);
    AdvanceCommitIndex();
  } else {
    uint64_t next = next_index_[msg.from] > 1 ? next_index_[msg.from] - 1 : 1;
    if (hint.ok()) next = *hint + 1;
    next_index_[msg.from] = std::max(match_index_[msg.from] + 1, next);
    SendAppendEntries(msg.from);
  }
}

void RaftReplica::AdvanceCommitIndex() {
  for (uint64_t n = LastIndex(); n > commit_index_ && n > snapshot_index_;
       --n) {
    if (PREVER_MUTATION(RAFT_COMMIT_FOREIGN_TERM, TermAt(n) != term_,
                        false)) {
      break;  // Only current-term entries.
    }
    size_t count = 0;
    for (size_t i = 0; i < config_.num_replicas; ++i) {
      if (match_index_[i] >= n) ++count;
    }
    if (PREVER_MUTATION(RAFT_COMMIT_QUORUM_MINUS_ONE, count >= Majority(),
                        count + 1 >= Majority())) {
      commit_index_ = n;
      ApplyCommitted();
      break;
    }
  }
}

void RaftReplica::ApplyCommitted() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    const Bytes* cmd = CommandAt(last_applied_);
    if (apply_cb_ && cmd != nullptr) apply_cb_(last_applied_, *cmd);
  }
}

void RaftReplica::HandleInstallSnapshot(const net::Message& msg) {
  BinaryReader r(msg.payload);
  auto term = r.ReadU64();
  auto snap_index = r.ReadU64();
  auto snap_term = r.ReadU64();
  auto blob = r.ReadBytes();
  if (!term.ok() || !snap_index.ok() || !snap_term.ok() || !blob.ok()) return;
  if (*term < term_) {
    BinaryWriter w;
    w.WriteU64(term_);
    w.WriteBool(false);
    w.WriteU64(0);
    w.WriteU64(LastIndex());  // Conflict hint.
    net_->Send(id_, msg.from, kAppendReply, w.bytes());
    return;
  }
  if (*term > term_ || role_ != Role::kFollower) BecomeFollower(*term);
  ArmElectionTimer();
  // A snapshot at or below our own snapshot/applied point is stale: our
  // state already covers it, so acknowledge without installing (a stale
  // install would rewind the application's restored state).
  bool fresh = *snap_index > snapshot_index_ && *snap_index > last_applied_;
  if (!PREVER_MUTATION(RAFT_SNAPSHOT_STALE_ACCEPT, !fresh, false)) {
    if (*snap_index > snapshot_index_) {
      if (LastIndex() >= *snap_index && TermAt(*snap_index) == *snap_term) {
        // Our log extends past the snapshot and agrees at its boundary:
        // retain the uncovered suffix (§7).
        log_.erase(log_.begin(),
                   log_.begin() +
                       static_cast<std::ptrdiff_t>(*snap_index -
                                                   snapshot_index_));
      } else {
        log_.clear();
      }
      snapshot_index_ = *snap_index;
      snapshot_term_ = *snap_term;
    }
    snapshot_blob_ = *blob;
    commit_index_ = std::max(commit_index_, *snap_index);
    last_applied_ = std::max(last_applied_, *snap_index);
    StateTransferBytesCounter().Inc(blob->size());
    PREVER_CAUSAL_INSTANT(obs::TraceStage::kStateTransfer, blob->size());
    if (snapshot_installer_) snapshot_installer_(*snap_index, *blob);
    ApplyCommitted();  // Log suffix may already be committed past the blob.
  }
  BinaryWriter w;
  w.WriteU64(term_);
  w.WriteBool(true);
  w.WriteU64(*snap_index);  // Match index: the snapshot covers the prefix.
  w.WriteU64(LastIndex());  // Conflict hint (unused on success).
  net_->Send(id_, msg.from, kAppendReply, w.bytes());
}

RaftCluster::RaftCluster(const RaftConfig& config, net::SimNetwork* net) {
  applied_.resize(config.num_replicas);
  for (size_t i = 0; i < config.num_replicas; ++i) {
    auto replica = std::make_unique<RaftReplica>(
        static_cast<net::NodeId>(i), config, net, config.seed * 1000 + i);
    RaftReplica* raw = replica.get();
    net->AddNode([raw](const net::Message& msg) { raw->OnMessage(msg); });
    replicas_.push_back(std::move(replica));
  }
  for (size_t i = 0; i < replicas_.size(); ++i) {
    replicas_[i]->SetApplyCallback(
        [this, i](uint64_t /*index*/, const Bytes& cmd) {
          applied_[i].push_back(cmd);
        });
    replicas_[i]->Start();
  }
}

Result<RaftReplica*> RaftCluster::Leader() {
  RaftReplica* leader = nullptr;
  uint64_t best_term = 0;
  for (auto& r : replicas_) {
    if (r->role() == RaftReplica::Role::kLeader && !r->crashed() &&
        r->term() >= best_term) {
      leader = r.get();
      best_term = r->term();
    }
  }
  if (leader == nullptr) return Status::Unavailable("no leader elected");
  return leader;
}

Status RaftCluster::Submit(const Bytes& command) {
  PREVER_ASSIGN_OR_RETURN(RaftReplica * leader, Leader());
  return leader->Submit(command);
}

}  // namespace prever::consensus
