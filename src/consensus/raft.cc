#include "consensus/raft.h"

#include <algorithm>

#include "common/serial.h"
#include "mutate/mutation.h"

namespace prever::consensus {

namespace {

enum RaftMsgType : uint32_t {
  kRequestVote = 10,
  kVoteReply = 11,
  kAppendEntries = 12,
  kAppendReply = 13,
};

}  // namespace

RaftReplica::RaftReplica(net::NodeId id, const RaftConfig& config,
                         net::SimNetwork* net, uint64_t seed)
    : id_(id),
      config_(config),
      net_(net),
      rng_(seed),
      next_index_(config.num_replicas, 1),
      match_index_(config.num_replicas, 0) {}

void RaftReplica::Start() { ArmElectionTimer(); }

void RaftReplica::Crash() {
  crashed_ = true;
  ++timer_epoch_;
}

void RaftReplica::Restart() {
  crashed_ = false;
  role_ = Role::kFollower;
  votes_.clear();
  ++timer_epoch_;
  ArmElectionTimer();
}

void RaftReplica::ArmElectionTimer() {
  uint64_t epoch = ++timer_epoch_;
  SimTime span =
      config_.election_timeout_max - config_.election_timeout_min + 1;
  SimTime delay = config_.election_timeout_min + rng_.NextBelow(span);
  net_->ScheduleAfter(delay, [this, epoch] {
    if (crashed_ || epoch != timer_epoch_) return;
    if (role_ != Role::kLeader) StartElection();
  });
}

void RaftReplica::ArmHeartbeatTimer() {
  uint64_t epoch = timer_epoch_;
  net_->ScheduleAfter(config_.heartbeat_interval, [this, epoch] {
    if (crashed_ || epoch != timer_epoch_ || role_ != Role::kLeader) return;
    BroadcastAppendEntries();
    ArmHeartbeatTimer();
  });
}

void RaftReplica::BecomeFollower(uint64_t term) {
  term_ = term;
  role_ = Role::kFollower;
  voted_for_ = -1;
  votes_.clear();
  ArmElectionTimer();
}

void RaftReplica::StartElection() {
  role_ = Role::kCandidate;
  ++term_;
  voted_for_ = static_cast<int64_t>(id_);
  votes_ = {id_};
  ArmElectionTimer();  // Retry election if this one stalls.
  BinaryWriter w;
  w.WriteU64(term_);
  w.WriteU64(log_.size());
  w.WriteU64(LastLogTerm());
  for (net::NodeId to = 0; to < config_.num_replicas; ++to) {
    if (to != id_) net_->Send(id_, to, kRequestVote, w.bytes());
  }
  if (PREVER_MUTATION(RAFT_VOTE_QUORUM_MINUS_ONE, votes_.size() >= Majority(),
                      votes_.size() + 1 >= Majority())) {
    BecomeLeader();  // 1-node cluster.
  }
}

void RaftReplica::BecomeLeader() {
  role_ = Role::kLeader;
  for (size_t i = 0; i < config_.num_replicas; ++i) {
    next_index_[i] = log_.size() + 1;
    match_index_[i] = 0;
  }
  match_index_[id_] = log_.size();
  ++timer_epoch_;  // Cancel election timers.
  BroadcastAppendEntries();
  ArmHeartbeatTimer();
}

Status RaftReplica::Submit(const Bytes& command) {
  if (crashed_) return Status::Unavailable("replica crashed");
  if (role_ != Role::kLeader) return Status::NotSupported("not the leader");
  log_.push_back(LogEntry{term_, command});
  match_index_[id_] = log_.size();
  BroadcastAppendEntries();
  return Status::Ok();
}

void RaftReplica::BroadcastAppendEntries() {
  for (net::NodeId to = 0; to < config_.num_replicas; ++to) {
    if (to != id_) SendAppendEntries(to);
  }
}

void RaftReplica::SendAppendEntries(net::NodeId to) {
  uint64_t prev_index = next_index_[to] - 1;
  uint64_t prev_term =
      prev_index == 0 ? 0 : log_[prev_index - 1].term;
  BinaryWriter w;
  w.WriteU64(term_);
  w.WriteU64(prev_index);
  w.WriteU64(prev_term);
  w.WriteU64(commit_index_);
  uint64_t count = log_.size() - prev_index;
  w.WriteU32(static_cast<uint32_t>(count));
  for (uint64_t i = prev_index; i < log_.size(); ++i) {
    w.WriteU64(log_[i].term);
    w.WriteBytes(log_[i].command);
  }
  net_->Send(id_, to, kAppendEntries, w.bytes());
  // Pipelining: optimistically advance next_index so entries submitted
  // before the reply arrives stream in follow-up AppendEntries instead of
  // waiting a full round trip. The reply's conflict hint walks it back if
  // the follower's log diverged.
  next_index_[to] = log_.size() + 1;
}

void RaftReplica::OnMessage(const net::Message& msg) {
  if (crashed_) return;
  switch (msg.type) {
    case kRequestVote:
      HandleRequestVote(msg);
      break;
    case kVoteReply:
      HandleVoteReply(msg);
      break;
    case kAppendEntries:
      HandleAppendEntries(msg);
      break;
    case kAppendReply:
      HandleAppendReply(msg);
      break;
    default:
      break;
  }
}

void RaftReplica::HandleRequestVote(const net::Message& msg) {
  BinaryReader r(msg.payload);
  auto term = r.ReadU64();
  auto last_log_index = r.ReadU64();
  auto last_log_term = r.ReadU64();
  if (!term.ok() || !last_log_index.ok() || !last_log_term.ok()) return;

  if (*term > term_) BecomeFollower(*term);
  bool grant = false;
  if (*term == term_ &&
      (voted_for_ == -1 || voted_for_ == static_cast<int64_t>(msg.from))) {
    // Election restriction: candidate's log must be at least as up to date.
    bool up_to_date =
        *last_log_term > LastLogTerm() ||
        (*last_log_term == LastLogTerm() && *last_log_index >= log_.size());
    if (PREVER_MUTATION(RAFT_ELECTION_RESTRICTION_SKIP, up_to_date, true)) {
      grant = true;
      voted_for_ = static_cast<int64_t>(msg.from);
      ArmElectionTimer();
    }
  }
  BinaryWriter w;
  w.WriteU64(term_);
  w.WriteBool(grant);
  net_->Send(id_, msg.from, kVoteReply, w.bytes());
}

void RaftReplica::HandleVoteReply(const net::Message& msg) {
  BinaryReader r(msg.payload);
  auto term = r.ReadU64();
  auto grant = r.ReadBool();
  if (!term.ok() || !grant.ok()) return;
  if (*term > term_) {
    BecomeFollower(*term);
    return;
  }
  if (role_ != Role::kCandidate || *term != term_ || !*grant) return;
  votes_.insert(msg.from);
  if (PREVER_MUTATION(RAFT_VOTE_QUORUM_MINUS_ONE, votes_.size() >= Majority(),
                      votes_.size() + 1 >= Majority())) {
    BecomeLeader();
  }
}

void RaftReplica::HandleAppendEntries(const net::Message& msg) {
  BinaryReader r(msg.payload);
  auto term = r.ReadU64();
  auto prev_index = r.ReadU64();
  auto prev_term = r.ReadU64();
  auto leader_commit = r.ReadU64();
  auto count = r.ReadU32();
  if (!term.ok() || !prev_index.ok() || !prev_term.ok() ||
      !leader_commit.ok() || !count.ok()) {
    return;
  }
  // Hop marker in the flight recorder: the message's propagated context
  // (installed by SimNetwork around delivery) ties this replication hop to
  // the transaction whose envelope rides in the entries.
  PREVER_CAUSAL_INSTANT(obs::TraceStage::kRaftAppendEntries, *count);

  bool success = false;
  if (PREVER_MUTATION(RAFT_STALE_TERM_ACCEPT, *term >= term_, true)) {
    if (*term > term_ || role_ != Role::kFollower) BecomeFollower(*term);
    ArmElectionTimer();
    // Log consistency check at prev_index.
    if (*prev_index == 0 ||
        (*prev_index <= log_.size() &&
         PREVER_MUTATION(RAFT_LOG_MATCH_SKIP,
                         log_[*prev_index - 1].term == *prev_term, true))) {
      success = true;
      uint64_t index = *prev_index;
      for (uint32_t i = 0; i < *count; ++i) {
        auto entry_term = r.ReadU64();
        auto command = r.ReadBytes();
        if (!entry_term.ok() || !command.ok()) return;
        ++index;
        if (index <= log_.size()) {
          if (log_[index - 1].term != *entry_term) {
            log_.resize(index - 1);  // Conflict: truncate.
            log_.push_back(LogEntry{*entry_term, *command});
          }
        } else {
          log_.push_back(LogEntry{*entry_term, *command});
        }
      }
      if (*leader_commit > commit_index_) {
        commit_index_ = std::min<uint64_t>(*leader_commit, log_.size());
        ApplyCommitted();
      }
    }
  }
  BinaryWriter w;
  w.WriteU64(term_);
  w.WriteBool(success);
  w.WriteU64(success ? *prev_index + *count : 0);  // New match index.
  // Conflict hint: on rejection the leader can rewind next_index straight
  // to our log end instead of decrementing one entry per round trip.
  uint64_t hint =
      std::min<uint64_t>(log_.size(), *prev_index > 0 ? *prev_index - 1 : 0);
  w.WriteU64(hint);
  net_->Send(id_, msg.from, kAppendReply, w.bytes());
}

void RaftReplica::HandleAppendReply(const net::Message& msg) {
  BinaryReader r(msg.payload);
  auto term = r.ReadU64();
  auto success = r.ReadBool();
  auto match = r.ReadU64();
  auto hint = r.ReadU64();  // Absent in old-format replies; optional.
  if (!term.ok() || !success.ok() || !match.ok()) return;
  if (*term > term_) {
    BecomeFollower(*term);
    return;
  }
  if (role_ != Role::kLeader || *term != term_) return;
  if (*success) {
    match_index_[msg.from] = std::max(match_index_[msg.from], *match);
    // next_index was optimistically advanced at send time; never move it
    // backwards on a stale success reply.
    next_index_[msg.from] =
        std::max(next_index_[msg.from], match_index_[msg.from] + 1);
    AdvanceCommitIndex();
  } else {
    uint64_t next = next_index_[msg.from] > 1 ? next_index_[msg.from] - 1 : 1;
    if (hint.ok()) next = *hint + 1;
    next_index_[msg.from] = std::max(match_index_[msg.from] + 1, next);
    SendAppendEntries(msg.from);
  }
}

void RaftReplica::AdvanceCommitIndex() {
  for (uint64_t n = log_.size(); n > commit_index_; --n) {
    if (PREVER_MUTATION(RAFT_COMMIT_FOREIGN_TERM, log_[n - 1].term != term_,
                        false)) {
      break;  // Only current-term entries.
    }
    size_t count = 0;
    for (size_t i = 0; i < config_.num_replicas; ++i) {
      if (match_index_[i] >= n) ++count;
    }
    if (PREVER_MUTATION(RAFT_COMMIT_QUORUM_MINUS_ONE, count >= Majority(),
                        count + 1 >= Majority())) {
      commit_index_ = n;
      ApplyCommitted();
      break;
    }
  }
}

void RaftReplica::ApplyCommitted() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    if (apply_cb_) apply_cb_(last_applied_, log_[last_applied_ - 1].command);
  }
}

RaftCluster::RaftCluster(const RaftConfig& config, net::SimNetwork* net) {
  applied_.resize(config.num_replicas);
  for (size_t i = 0; i < config.num_replicas; ++i) {
    auto replica = std::make_unique<RaftReplica>(
        static_cast<net::NodeId>(i), config, net, config.seed * 1000 + i);
    RaftReplica* raw = replica.get();
    net->AddNode([raw](const net::Message& msg) { raw->OnMessage(msg); });
    replicas_.push_back(std::move(replica));
  }
  for (size_t i = 0; i < replicas_.size(); ++i) {
    replicas_[i]->SetApplyCallback(
        [this, i](uint64_t /*index*/, const Bytes& cmd) {
          applied_[i].push_back(cmd);
        });
    replicas_[i]->Start();
  }
}

Result<RaftReplica*> RaftCluster::Leader() {
  RaftReplica* leader = nullptr;
  uint64_t best_term = 0;
  for (auto& r : replicas_) {
    if (r->role() == RaftReplica::Role::kLeader && !r->crashed() &&
        r->term() >= best_term) {
      leader = r.get();
      best_term = r->term();
    }
  }
  if (leader == nullptr) return Status::Unavailable("no leader elected");
  return leader;
}

Status RaftCluster::Submit(const Bytes& command) {
  PREVER_ASSIGN_OR_RETURN(RaftReplica * leader, Leader());
  return leader->Submit(command);
}

}  // namespace prever::consensus
