#ifndef PREVER_CONSENSUS_METRICS_H_
#define PREVER_CONSENSUS_METRICS_H_

#include <map>
#include <string>

#include "obs/registry.h"

namespace prever::consensus {

/// Registry-backed protocol instrumentation shared by all replicas of one
/// cluster. Message counters are resolved to stable pointers at construction
/// (one per declared message type and direction), so the per-message hot path
/// is a single relaxed increment. Replicas hold a nullable pointer: clusters
/// without a metrics object (unit tests) skip instrumentation entirely.
class ConsensusMetrics {
 public:
  /// `proto` labels every family (e.g. "raft", "pbft"); `type_names` maps
  /// wire message-type ids to stable label values.
  ConsensusMetrics(const std::string& proto,
                   const std::map<uint32_t, std::string>& type_names,
                   obs::Registry* registry = &obs::Registry::Default());

  void OnSend(uint32_t type) { Bump(sent_, type); }
  void OnRecv(uint32_t type) { Bump(recv_, type); }
  void OnElection() { elections_->Inc(); }
  void OnViewChange() { view_changes_->Inc(); }

 private:
  void Bump(std::map<uint32_t, obs::Counter*>& dir, uint32_t type) {
    auto it = dir.find(type);
    (it != dir.end() ? it->second : other_)->Inc();
  }

  std::map<uint32_t, obs::Counter*> sent_;
  std::map<uint32_t, obs::Counter*> recv_;
  obs::Counter* other_;  ///< Types not declared in `type_names`.
  obs::Counter* elections_;
  obs::Counter* view_changes_;
};

}  // namespace prever::consensus

#endif  // PREVER_CONSENSUS_METRICS_H_
