#include "consensus/metrics.h"

namespace prever::consensus {

ConsensusMetrics::ConsensusMetrics(
    const std::string& proto,
    const std::map<uint32_t, std::string>& type_names,
    obs::Registry* registry) {
  auto counter = [&](const std::string& type, const char* dir) {
    return registry->GetCounter(
        "prever_consensus_msgs_total",
        {{"proto", proto}, {"type", type}, {"dir", dir}});
  };
  for (const auto& [id, name] : type_names) {
    sent_[id] = counter(name, "sent");
    recv_[id] = counter(name, "recv");
  }
  other_ = counter("other", "any");
  elections_ = registry->GetCounter("prever_consensus_elections_total",
                                    {{"proto", proto}});
  view_changes_ = registry->GetCounter("prever_consensus_view_changes_total",
                                       {{"proto", proto}});
}

}  // namespace prever::consensus
