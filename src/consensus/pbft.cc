#include "consensus/pbft.h"

#include "common/serial.h"
#include "crypto/sha256.h"
#include "mutate/mutation.h"
#include "obs/registry.h"
#include "obs/tracing.h"

namespace prever::consensus {

namespace {

enum PbftMsgType : uint32_t {
  kClientRequest = 1,
  kPrePrepare = 2,
  kPrepare = 3,
  kCommit = 4,
  kViewChange = 5,
  kNewView = 6,
  kCheckpoint = 7,
  kFetchState = 8,
  kStateResponse = 9,
};

obs::Counter& PbftStateTransferBytesCounter() {
  static obs::Counter* c = obs::Registry::Default().GetCounter(
      "prever_recovery_state_transfer_bytes");
  return *c;
}

obs::Counter& PbftLogBytesReclaimedCounter() {
  static obs::Counter* c = obs::Registry::Default().GetCounter(
      "prever_recovery_log_bytes_reclaimed");
  return *c;
}

Bytes DigestOf(const Bytes& command) { return crypto::Sha256::Hash(command); }

Bytes EncodePrePrepare(uint64_t view, uint64_t seq, const Bytes& command) {
  BinaryWriter w;
  w.WriteU64(view);
  w.WriteU64(seq);
  w.WriteBytes(command);
  return w.Take();
}

Bytes EncodeVote(uint64_t view, uint64_t seq, const Bytes& digest) {
  BinaryWriter w;
  w.WriteU64(view);
  w.WriteU64(seq);
  w.WriteBytes(digest);
  return w.Take();
}

using PreparedEntry = PbftReplica::PreparedEntry;

Bytes EncodeViewChange(uint64_t new_view,
                       const std::vector<PreparedEntry>& entries) {
  BinaryWriter w;
  w.WriteU64(new_view);
  w.WriteU32(static_cast<uint32_t>(entries.size()));
  for (const PreparedEntry& e : entries) {
    w.WriteU64(e.seq);
    w.WriteU64(e.view);
    w.WriteBytes(e.command);
  }
  return w.Take();
}

Result<std::pair<uint64_t, std::vector<PreparedEntry>>> DecodeViewChange(
    const Bytes& payload) {
  BinaryReader r(payload);
  PREVER_ASSIGN_OR_RETURN(uint64_t new_view, r.ReadU64());
  PREVER_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  std::vector<PreparedEntry> entries(n);
  for (uint32_t i = 0; i < n; ++i) {
    PREVER_ASSIGN_OR_RETURN(entries[i].seq, r.ReadU64());
    PREVER_ASSIGN_OR_RETURN(entries[i].view, r.ReadU64());
    PREVER_ASSIGN_OR_RETURN(entries[i].command, r.ReadBytes());
  }
  return std::make_pair(new_view, std::move(entries));
}

}  // namespace

PbftReplica::PbftReplica(net::NodeId id, const PbftConfig& config,
                         net::SimNetwork* net)
    : id_(id), config_(config), net_(net) {}

void PbftReplica::SendMsg(net::NodeId to, uint32_t type,
                          const Bytes& payload) {
  if (metrics_ != nullptr) metrics_->OnSend(type);
  net_->Send(id_, to, type, payload);
}

void PbftReplica::Broadcast(uint32_t type, const Bytes& payload) {
  for (net::NodeId to = 0; to < config_.num_replicas; ++to) {
    if (to != id_) SendMsg(to, type, payload);
  }
}

void PbftReplica::OnMessage(const net::Message& msg) {
  if (crashed_ || fault_mode_ == PbftFaultMode::kSilent) return;
  if (metrics_ != nullptr) metrics_->OnRecv(msg.type);
  switch (msg.type) {
    case kClientRequest:
      OnClientRequest(msg.payload);
      break;
    case kPrePrepare:
      HandlePrePrepare(msg);
      break;
    case kPrepare:
      HandlePrepare(msg);
      break;
    case kCommit:
      HandleCommit(msg);
      break;
    case kViewChange:
      HandleViewChange(msg);
      break;
    case kNewView:
      HandleNewView(msg);
      break;
    case kCheckpoint:
      HandleCheckpoint(msg);
      break;
    case kFetchState:
      HandleFetchState(msg);
      break;
    case kStateResponse:
      HandleStateResponse(msg);
      break;
    default:
      break;
  }
}

void PbftReplica::OnClientRequest(const Bytes& command) {
  if (crashed_ || fault_mode_ == PbftFaultMode::kSilent) return;
  Bytes digest = DigestOf(command);
  if (executed_digests_.count(digest)) return;
  pending_requests_[digest] = command;
  if (IsPrimary() && !view_changing_) {
    if (seen_requests_.count(digest)) return;
    if (next_seq_ > last_executed_ + config_.high_watermark_window) {
      // Window full: defer until execution advances the low watermark.
      // Backups armed timers when this request was broadcast, so liveness
      // does not depend on the drain happening.
      if (deferred_digests_.insert(digest).second) {
        deferred_.push_back(command);
      }
      return;
    }
    seen_requests_.insert(digest);
    Propose(command);
  } else {
    ArmRequestTimer(digest);
  }
}

void PbftReplica::Propose(const Bytes& command) {
  uint64_t seq = next_seq_++;
  Bytes digest = DigestOf(command);
  SlotState& slot = Slot(seq);
  slot.view = view_;
  slot.digest = digest;
  slot.command = command;
  slot.pre_prepared = true;
  slot.prepares[digest].insert(id_);

  if (fault_mode_ == PbftFaultMode::kEquivocate) {
    // Send conflicting proposals to the two halves of the cluster; PBFT's
    // prepare quorums must prevent both from committing.
    Bytes other = command;
    other.push_back(0xEE);
    for (net::NodeId to = 0; to < config_.num_replicas; ++to) {
      if (to == id_) continue;
      const Bytes& cmd = (to % 2 == 0) ? command : other;
      SendMsg(to, kPrePrepare, EncodePrePrepare(view_, seq, cmd));
    }
    return;
  }
  for (net::NodeId to = 0; to < config_.num_replicas; ++to) {
    if (to == id_) continue;
    SendMsg(to, kPrePrepare, EncodePrePrepare(view_, seq, command));
  }
}

void PbftReplica::HandlePrePrepare(const net::Message& msg) {
  BinaryReader r(msg.payload);
  auto view = r.ReadU64();
  auto seq = r.ReadU64();
  auto command = r.ReadBytes();
  if (!view.ok() || !seq.ok() || !command.ok()) return;
  // Hop markers: the delivered message's propagated context (installed by
  // SimNetwork) ties each PBFT phase hop to its transaction's trace.
  PREVER_CAUSAL_INSTANT(obs::TraceStage::kPbftPrePrepare, *seq);
  if (*view > view_ || (view_changing_ && *view == view_)) {
    Stash(msg);  // Raced ahead of our NewView; replay after installation.
    return;
  }
  if (*view != view_ || view_changing_) return;
  if (PREVER_MUTATION(PBFT_PRIMARY_CHECK_SKIP,
                      msg.from != view_ % config_.num_replicas, false)) {
    return;  // Not the primary.
  }
  // Watermark bound: refuse proposals far past our execution point (2x the
  // primary's window — our low watermark may lag its). Caps log_ growth under
  // a Byzantine primary spraying arbitrary sequence numbers.
  if (PREVER_MUTATION(PBFT_WATERMARK_SKIP,
                      *seq > last_executed_ + 2 * config_.high_watermark_window,
                      false)) {
    return;
  }

  SlotState& slot = Slot(*seq);
  Bytes digest = DigestOf(*command);
  if (PREVER_MUTATION(PBFT_CONFLICTING_DIGEST_ACCEPT,
                      slot.pre_prepared && slot.digest != digest, false)) {
    // Conflicting proposal for the same (view, seq): refuse; the timer will
    // force a view change if progress stalls.
    return;
  }
  slot.view = *view;
  slot.digest = digest;
  slot.command = *command;
  slot.pre_prepared = true;
  slot.prepares[digest].insert(id_);
  if (*seq >= next_seq_) next_seq_ = *seq + 1;
  for (net::NodeId to = 0; to < config_.num_replicas; ++to) {
    if (to == id_) continue;
    SendMsg(to, kPrepare, EncodeVote(*view, *seq, digest));
  }
  ArmRequestTimer(digest);
  MaybeSendCommit(*seq);
}

void PbftReplica::HandlePrepare(const net::Message& msg) {
  BinaryReader r(msg.payload);
  auto view = r.ReadU64();
  auto seq = r.ReadU64();
  auto digest = r.ReadBytes();
  if (!view.ok() || !seq.ok() || !digest.ok()) return;
  PREVER_CAUSAL_INSTANT(obs::TraceStage::kPbftPrepare, *seq);
  if (*view > view_ || (view_changing_ && *view == view_)) {
    Stash(msg);
    return;
  }
  if (*view != view_ || view_changing_) return;
  SlotState& slot = Slot(*seq);
  slot.prepares[*digest].insert(msg.from);
  MaybeSendCommit(*seq);
}

void PbftReplica::MaybeSendCommit(uint64_t seq) {
  SlotState& slot = Slot(seq);
  if (!slot.pre_prepared || slot.sent_commit) return;
  if (PREVER_MUTATION(PBFT_PREPARE_QUORUM_MINUS_ONE,
                      slot.prepares[slot.digest].size() < quorum2f1(),
                      slot.prepares[slot.digest].size() + 1 < quorum2f1())) {
    return;
  }
  slot.sent_commit = true;
  slot.commits[slot.digest].insert(id_);
  for (net::NodeId to = 0; to < config_.num_replicas; ++to) {
    if (to == id_) continue;
    SendMsg(to, kCommit, EncodeVote(view_, seq, slot.digest));
  }
  TryExecute();
}

void PbftReplica::HandleCommit(const net::Message& msg) {
  BinaryReader r(msg.payload);
  auto view = r.ReadU64();
  auto seq = r.ReadU64();
  auto digest = r.ReadBytes();
  if (!view.ok() || !seq.ok() || !digest.ok()) return;
  PREVER_CAUSAL_INSTANT(obs::TraceStage::kPbftCommit, *seq);
  SlotState& slot = Slot(*seq);
  slot.commits[*digest].insert(msg.from);
  TryExecute();
}

void PbftReplica::TryExecute() {
  ExecuteLoop();
  // Execution moved the low watermark; the primary can propose deferred
  // requests that now fit the window.
  DrainDeferred();
}

void PbftReplica::DrainDeferred() {
  if (!IsPrimary() || view_changing_) return;
  while (!deferred_.empty() &&
         next_seq_ <= last_executed_ + config_.high_watermark_window) {
    Bytes command = std::move(deferred_.front());
    deferred_.pop_front();
    Bytes digest = DigestOf(command);
    deferred_digests_.erase(digest);
    if (executed_digests_.count(digest) || seen_requests_.count(digest)) {
      continue;
    }
    seen_requests_.insert(digest);
    Propose(command);
  }
}

void PbftReplica::ExecuteLoop() {
  for (;;) {
    auto it = log_.find(last_executed_ + 1);
    if (it == log_.end()) return;
    SlotState& slot = it->second;
    if (slot.executed) {
      ++last_executed_;
      MaybeCreateCheckpoint();
      continue;
    }
    if (!slot.pre_prepared || slot.sent_commit == false) return;
    if (PREVER_MUTATION(PBFT_COMMIT_QUORUM_MINUS_ONE,
                        slot.commits[slot.digest].size() < quorum2f1(),
                        slot.commits[slot.digest].size() + 1 < quorum2f1())) {
      return;
    }
    slot.executed = true;
    ++last_executed_;
    if (PREVER_MUTATION(PBFT_EXEC_DEDUP_SKIP,
                        executed_digests_.count(slot.digest) != 0, false)) {
      // Reply-cache analogue (PBFT §4.4): a request the new primary
      // re-assigned to a second sequence number across a view change (its
      // log had no trace of the original assignment) commits twice but must
      // execute only once.
      pending_requests_.erase(slot.digest);
      pending_timers_.erase(slot.digest);
      MaybeCreateCheckpoint();
      continue;
    }
    ++num_executed_;
    executed_digests_.insert(slot.digest);
    pending_requests_.erase(slot.digest);
    pending_timers_.erase(slot.digest);
    if (commit_cb_) commit_cb_(last_executed_, slot.command);
    MaybeCreateCheckpoint();
  }
}

Bytes PbftReplica::BuildCheckpointBlob() const {
  // Deterministic across replicas at equal execution points: the executed
  // digests are a sorted set and the app snapshot is a pure function of the
  // executed prefix.
  BinaryWriter w;
  w.WriteU64(last_executed_);
  w.WriteU32(static_cast<uint32_t>(executed_digests_.size()));
  for (const Bytes& d : executed_digests_) w.WriteBytes(d);
  w.WriteBytes(state_snapshot_ ? state_snapshot_() : Bytes{});
  return w.Take();
}

void PbftReplica::InstallCheckpointBlob(const Bytes& blob) {
  BinaryReader r(blob);
  auto seq = r.ReadU64();
  auto n = r.ReadU32();
  if (!seq.ok() || !n.ok()) return;
  std::set<Bytes> digests;
  for (uint32_t i = 0; i < *n; ++i) {
    auto d = r.ReadBytes();
    if (!d.ok()) return;
    digests.insert(std::move(*d));
  }
  auto app = r.ReadBytes();
  if (!app.ok()) return;

  last_executed_ = *seq;
  num_executed_ = digests.size();
  executed_digests_ = std::move(digests);
  if (next_seq_ <= *seq) next_seq_ = *seq + 1;
  stable_seq_ = *seq;
  stable_blob_ = blob;
  stable_digest_ = DigestOf(blob);
  // Everything at or below the installed point is already reflected in the
  // snapshot; drop those slots (and any pending executions they held).
  for (auto it = log_.begin(); it != log_.end() && it->first <= *seq;) {
    it = log_.erase(it);
  }
  for (const Bytes& d : executed_digests_) {
    pending_requests_.erase(d);
    pending_timers_.erase(d);
  }
  if (state_install_) state_install_(*seq, *app);
}

void PbftReplica::MaybeCreateCheckpoint() {
  if (config_.checkpoint_interval == 0) return;
  if (last_executed_ == 0 || last_executed_ <= stable_seq_) return;
  if (last_executed_ % config_.checkpoint_interval != 0) return;
  PendingCheckpoint& cp = checkpoints_[last_executed_];
  if (cp.has_own) return;
  cp.has_own = true;
  cp.own_blob = BuildCheckpointBlob();
  cp.own_digest = DigestOf(cp.own_blob);
  cp.votes[cp.own_digest].insert(id_);

  BinaryWriter w;
  w.WriteU64(last_executed_);
  w.WriteBytes(cp.own_digest);
  Broadcast(kCheckpoint, w.bytes());
  MaybeStabilize(last_executed_);
}

void PbftReplica::MaybeStabilize(uint64_t seq) {
  if (seq <= stable_seq_) return;
  auto it = checkpoints_.find(seq);
  if (it == checkpoints_.end()) return;
  PendingCheckpoint& cp = it->second;
  if (!cp.has_own) return;  // Our own state at seq anchors the certificate.
  auto votes = cp.votes.find(cp.own_digest);
  if (votes == cp.votes.end() || votes->second.size() < quorum2f1()) return;
  // 2f+1 matching digests: the checkpoint is stable; advance the low
  // watermark and garbage-collect the message log below it.
  stable_seq_ = seq;
  stable_blob_ = cp.own_blob;
  stable_digest_ = cp.own_digest;
  CollectGarbage();
}

void PbftReplica::CollectGarbage() {
  uint64_t floor = PREVER_MUTATION(PBFT_GC_BEYOND_STABLE, stable_seq_,
                                   stable_seq_ + 1);
  uint64_t reclaimed = 0;
  for (auto it = log_.begin(); it != log_.end() && it->first <= floor;) {
    const SlotState& slot = it->second;
    reclaimed += slot.command.size() + slot.digest.size() + 64;
    it = log_.erase(it);
  }
  for (auto it = checkpoints_.begin();
       it != checkpoints_.end() && it->first <= stable_seq_;) {
    reclaimed += it->second.own_blob.size();
    it = checkpoints_.erase(it);
  }
  PbftLogBytesReclaimedCounter().Inc(reclaimed);
}

void PbftReplica::HandleCheckpoint(const net::Message& msg) {
  BinaryReader r(msg.payload);
  auto seq = r.ReadU64();
  auto digest = r.ReadBytes();
  if (!seq.ok() || !digest.ok()) return;
  if (*seq > max_seen_checkpoint_seq_) max_seen_checkpoint_seq_ = *seq;
  if (*seq > stable_seq_) {
    checkpoints_[*seq].votes[*digest].insert(msg.from);
    MaybeStabilize(*seq);
  }
  // Peers checkpointing past our execution point means we fell behind more
  // than a full interval (crash, partition): catch up via state transfer.
  if (config_.enable_state_transfer &&
      max_seen_checkpoint_seq_ > last_executed_) {
    RequestStateTransfer();
  }
}

void PbftReplica::RequestStateTransfer() {
  if (fetch_inflight_) return;
  fetch_inflight_ = true;
  state_responses_.clear();
  BinaryWriter w;
  w.WriteU64(last_executed_);
  Broadcast(kFetchState, w.bytes());
  // Refetch until caught up: responses can race with further progress, and
  // the first round may arrive while we still lag.
  net_->ScheduleAfter(config_.view_change_timeout, [this] {
    if (crashed_ || fault_mode_ == PbftFaultMode::kSilent) return;
    fetch_inflight_ = false;
    if (max_seen_checkpoint_seq_ > last_executed_) RequestStateTransfer();
  });
}

void PbftReplica::HandleFetchState(const net::Message& msg) {
  BinaryReader r(msg.payload);
  auto their_executed = r.ReadU64();
  if (!their_executed.ok()) return;
  if (last_executed_ <= *their_executed) return;  // Nothing to offer.
  BinaryWriter w;
  w.WriteU64(view_);
  w.WriteU64(stable_seq_);
  w.WriteBytes(stable_blob_);
  // Executed suffix above the stable checkpoint, in sequence order; the
  // requester certifies each command against f+1 matching responses.
  std::vector<std::pair<uint64_t, const Bytes*>> suffix;
  for (const auto& [seq, slot] : log_) {
    if (slot.executed && seq > stable_seq_ && seq <= last_executed_) {
      suffix.emplace_back(seq, &slot.command);
    }
  }
  w.WriteU32(static_cast<uint32_t>(suffix.size()));
  for (const auto& [seq, cmd] : suffix) {
    w.WriteU64(seq);
    w.WriteBytes(*cmd);
  }
  SendMsg(msg.from, kStateResponse, w.bytes());
}

void PbftReplica::HandleStateResponse(const net::Message& msg) {
  BinaryReader r(msg.payload);
  StateResponse resp;
  auto view = r.ReadU64();
  auto stable_seq = r.ReadU64();
  auto blob = r.ReadBytes();
  auto n = r.ReadU32();
  if (!view.ok() || !stable_seq.ok() || !blob.ok() || !n.ok()) return;
  resp.view = *view;
  resp.stable_seq = *stable_seq;
  resp.stable_blob = std::move(*blob);
  for (uint32_t i = 0; i < *n; ++i) {
    auto seq = r.ReadU64();
    auto cmd = r.ReadBytes();
    if (!seq.ok() || !cmd.ok()) return;
    resp.suffix[*seq] = std::move(*cmd);
  }
  state_responses_[msg.from] = std::move(resp);
  TryInstallState();
}

void PbftReplica::TryInstallState() {
  // Certify the stable checkpoint: f+1 responders vouching for the same
  // (seq, blob digest) guarantees at least one honest voucher, and the
  // checkpoint it vouches for carries a 2f+1 certificate at its origin.
  size_t needed =
      PREVER_MUTATION(PBFT_STATE_MATCH_QUORUM_MINUS_ONE, f() + 1, f());
  if (needed == 0) needed = 1;
  std::map<std::pair<uint64_t, Bytes>, std::set<net::NodeId>> groups;
  for (const auto& [from, resp] : state_responses_) {
    if (resp.stable_seq > last_executed_) {
      groups[{resp.stable_seq, DigestOf(resp.stable_blob)}].insert(from);
    }
  }
  const Bytes* install_blob = nullptr;
  uint64_t install_seq = 0;
  for (const auto& [key, voters] : groups) {
    if (voters.size() >= needed && key.first > install_seq) {
      install_seq = key.first;
      for (const auto& [from, resp] : state_responses_) {
        if (resp.stable_seq == key.first && voters.count(from)) {
          install_blob = &resp.stable_blob;
          break;
        }
      }
    }
  }
  if (install_blob != nullptr) {
    uint64_t bytes = install_blob->size();
    InstallCheckpointBlob(*install_blob);
    // Adopt the highest view among the vouching responders so we do not
    // trigger spurious view changes against a cluster that moved on.
    for (const auto& [from, resp] : state_responses_) {
      if (resp.view > view_) {
        view_ = resp.view;
        view_changing_ = false;
      }
    }
    PbftStateTransferBytesCounter().Inc(bytes);
    PREVER_CAUSAL_INSTANT(obs::TraceStage::kStateTransfer, bytes);
  }
  ExecuteCertifiedSuffix();
}

void PbftReplica::ExecuteCertifiedSuffix() {
  size_t needed =
      PREVER_MUTATION(PBFT_STATE_MATCH_QUORUM_MINUS_ONE, f() + 1, f());
  if (needed == 0) needed = 1;
  for (;;) {
    uint64_t seq = last_executed_ + 1;
    // Count matching commands for this sequence across responses.
    std::map<Bytes, std::set<net::NodeId>> votes;
    for (const auto& [from, resp] : state_responses_) {
      auto it = resp.suffix.find(seq);
      if (it != resp.suffix.end()) votes[it->second].insert(from);
    }
    const Bytes* command = nullptr;
    for (const auto& [cmd, voters] : votes) {
      if (voters.size() >= needed) {
        command = &cmd;
        break;
      }
    }
    if (command == nullptr) return;
    // Execute through the normal path: record an executed slot so later
    // fetch-state requests from others can serve this suffix too.
    SlotState& slot = Slot(seq);
    Bytes digest = DigestOf(*command);
    slot.view = view_;
    slot.digest = digest;
    slot.command = *command;
    slot.pre_prepared = true;
    slot.sent_commit = true;
    slot.executed = true;
    last_executed_ = seq;
    PbftStateTransferBytesCounter().Inc(command->size());
    if (next_seq_ <= seq) next_seq_ = seq + 1;
    if (executed_digests_.count(digest) == 0) {
      ++num_executed_;
      executed_digests_.insert(digest);
      pending_requests_.erase(digest);
      pending_timers_.erase(digest);
      if (commit_cb_) commit_cb_(last_executed_, *command);
    }
    MaybeCreateCheckpoint();
  }
}

void PbftReplica::Crash() {
  crashed_ = true;
  // Volatile protocol state is lost; view_ survives (durable view counter),
  // and the application recovers its part from checkpoint + journal.
  log_.clear();
  stashed_.clear();
  seen_requests_.clear();
  deferred_.clear();
  deferred_digests_.clear();
  executed_digests_.clear();
  pending_timers_.clear();
  pending_requests_.clear();
  view_change_entries_.clear();
  checkpoints_.clear();
  state_responses_.clear();
  stable_seq_ = 0;
  stable_blob_.clear();
  stable_digest_.clear();
  max_seen_checkpoint_seq_ = 0;
  fetch_inflight_ = false;
  view_changing_ = false;
  next_seq_ = 1;
  last_executed_ = 0;
  num_executed_ = 0;
}

void PbftReplica::Restart(const Bytes& checkpoint_blob) {
  crashed_ = false;
  if (!checkpoint_blob.empty()) InstallCheckpointBlob(checkpoint_blob);
  if (config_.enable_state_transfer) {
    fetch_inflight_ = false;
    RequestStateTransfer();
  }
}

void PbftReplica::Stash(const net::Message& msg) {
  constexpr size_t kMaxStash = 4096;
  if (stashed_.size() < kMaxStash) stashed_.push_back(msg);
}

void PbftReplica::ArmRequestTimer(const Bytes& digest) {
  if (pending_timers_.count(digest)) return;
  pending_timers_[digest] = true;
  uint64_t armed_view = view_;
  net_->ScheduleAfter(config_.view_change_timeout, [this, digest, armed_view] {
    if (crashed_ || fault_mode_ == PbftFaultMode::kSilent) return;
    if (executed_digests_.count(digest)) return;
    if (!pending_timers_.count(digest)) return;
    if (view_ != armed_view) return;  // Already moved on; a fresh timer runs.
    StartViewChange(view_ + 1);
  });
}

void PbftReplica::StartViewChange(uint64_t new_view) {
  if (new_view <= view_) return;
  if (metrics_ != nullptr) metrics_->OnViewChange();
  view_changing_ = true;
  // Escalation timer: if this view change stalls (e.g. the new primary is
  // faulty too), move on to the next view — PBFT's exponential-backoff
  // cascade, simplified to a fixed period.
  net_->ScheduleAfter(2 * config_.view_change_timeout, [this, new_view] {
    if (crashed_ || fault_mode_ == PbftFaultMode::kSilent) return;
    bool installed = view_ >= new_view && !view_changing_;
    if (!installed && view_ < new_view + 1) {
      StartViewChange(new_view + 1);
    }
  });
  std::vector<PreparedEntry> prepared;
  for (auto& [seq, slot] : log_) {
    if (slot.executed) continue;
    if (slot.pre_prepared &&
        slot.prepares[slot.digest].size() >= quorum2f1()) {
      prepared.push_back(PreparedEntry{seq, slot.view, slot.command});
    }
  }
  Bytes payload = EncodeViewChange(new_view, prepared);
  // Record our own view-change vote, then broadcast.
  view_change_entries_[new_view][id_] = prepared;
  for (net::NodeId to = 0; to < config_.num_replicas; ++to) {
    if (to == id_) continue;
    SendMsg(to, kViewChange, payload);
  }
  MaybeBecomeNewPrimary(new_view);
}

void PbftReplica::HandleViewChange(const net::Message& msg) {
  auto decoded = DecodeViewChange(msg.payload);
  if (!decoded.ok()) return;
  uint64_t new_view = decoded->first;
  if (PREVER_MUTATION(PBFT_VIEWCHANGE_STALE_ACCEPT, new_view <= view_, false)) {
    return;
  }
  view_change_entries_[new_view][msg.from] = std::move(decoded->second);
  // Join the view change once f+1 replicas are attempting it (standard
  // liveness amplification).
  if (!view_changing_ &&
      view_change_entries_[new_view].size() >= f() + 1) {
    StartViewChange(new_view);
    return;
  }
  MaybeBecomeNewPrimary(new_view);
}

void PbftReplica::MaybeBecomeNewPrimary(uint64_t new_view) {
  if (new_view % config_.num_replicas != id_) return;
  auto it = view_change_entries_.find(new_view);
  if (it == view_change_entries_.end()) return;
  if (it->second.size() < quorum2f1()) return;
  if (new_view <= installed_new_view_) return;
  installed_new_view_ = new_view;

  // Union of prepared entries: highest view wins per sequence number.
  std::map<uint64_t, PreparedEntry> merged;
  for (auto& [from, entries] : it->second) {
    for (const PreparedEntry& e : entries) {
      auto found = merged.find(e.seq);
      if (found == merged.end() || found->second.view < e.view) {
        merged[e.seq] = e;
      }
    }
  }
  std::vector<PreparedEntry> reproposals;
  reproposals.reserve(merged.size());
  for (auto& [seq, e] : merged) reproposals.push_back(e);

  Bytes payload = EncodeViewChange(new_view, reproposals);  // Same format.
  for (net::NodeId to = 0; to < config_.num_replicas; ++to) {
    if (to == id_) continue;
    SendMsg(to, kNewView, payload);
  }
  InstallNewView(new_view, reproposals);
}

void PbftReplica::HandleNewView(const net::Message& msg) {
  auto decoded = DecodeViewChange(msg.payload);
  if (!decoded.ok()) return;
  uint64_t new_view = decoded->first;
  if (new_view <= view_ && !(new_view == view_ && view_changing_)) return;
  if (msg.from != new_view % config_.num_replicas) return;
  InstallNewView(new_view, decoded->second);
}

void PbftReplica::InstallNewView(uint64_t new_view,
                                 const std::vector<PreparedEntry>& entries) {
  view_ = new_view;
  view_changing_ = false;
  // Deferred requests are still in pending_requests_; the new primary
  // re-proposes them below, so drop the stale per-view queue.
  deferred_.clear();
  deferred_digests_.clear();
  // Re-run the protocol for carried-over prepared entries in the new view.
  for (const PreparedEntry& e : entries) {
    SlotState& slot = Slot(e.seq);
    if (slot.executed) continue;
    Bytes digest = DigestOf(e.command);
    slot.view = new_view;
    slot.digest = digest;
    slot.command = e.command;
    slot.pre_prepared = true;
    slot.sent_commit = false;
    slot.prepares[digest].insert(id_);
    if (e.seq >= next_seq_) next_seq_ = e.seq + 1;
    for (net::NodeId to = 0; to < config_.num_replicas; ++to) {
      if (to == id_) continue;
      SendMsg(to, kPrepare, EncodeVote(new_view, e.seq, digest));
    }
  }
  // The new primary re-proposes pending requests that were never prepared.
  if (IsPrimary()) {
    for (auto& [digest, command] : pending_requests_) {
      bool already_in_log = false;
      for (auto& [seq, slot] : log_) {
        if (slot.pre_prepared && slot.digest == digest && !slot.executed) {
          already_in_log = true;
          break;
        }
        if (slot.executed && slot.digest == digest) {
          already_in_log = true;
          break;
        }
      }
      if (!already_in_log) {
        seen_requests_.insert(digest);
        Propose(command);
      }
    }
  } else {
    // Backups re-arm timers for still-pending requests in the new view.
    std::vector<Bytes> digests;
    for (auto& [digest, command] : pending_requests_) digests.push_back(digest);
    for (const Bytes& d : digests) {
      pending_timers_.erase(d);
      ArmRequestTimer(d);
    }
  }
  // Replay messages that raced ahead of this installation.
  std::vector<net::Message> stashed = std::move(stashed_);
  stashed_.clear();
  for (const net::Message& msg : stashed) OnMessage(msg);
}

PbftCluster::PbftCluster(const PbftConfig& config, net::SimNetwork* net) {
  metrics_ = std::make_unique<ConsensusMetrics>(
      "pbft", std::map<uint32_t, std::string>{{kClientRequest, "client_request"},
                                              {kPrePrepare, "pre_prepare"},
                                              {kPrepare, "prepare"},
                                              {kCommit, "commit"},
                                              {kViewChange, "view_change"},
                                              {kNewView, "new_view"},
                                              {kCheckpoint, "checkpoint"},
                                              {kFetchState, "fetch_state"},
                                              {kStateResponse, "state_response"}});
  executed_.resize(config.num_replicas);
  for (size_t i = 0; i < config.num_replicas; ++i) {
    auto replica = std::make_unique<PbftReplica>(
        static_cast<net::NodeId>(i), config, net);
    replica->SetMetrics(metrics_.get());
    PbftReplica* raw = replica.get();
    net::NodeId node = net->AddNode(
        [raw](const net::Message& msg) { raw->OnMessage(msg); });
    (void)node;
    replicas_.push_back(std::move(replica));
  }
  for (size_t i = 0; i < replicas_.size(); ++i) {
    replicas_[i]->SetCommitCallback(
        [this, i](uint64_t /*seq*/, const Bytes& cmd) {
          executed_[i].push_back(cmd);
        });
  }
}

void PbftCluster::Submit(const Bytes& command) {
  // Clients broadcast to every replica (backups arm timers; the primary
  // proposes). Delivery goes through each replica directly, which models a
  // client colocated with the cluster edge.
  for (auto& replica : replicas_) replica->OnClientRequest(command);
}

void PbftCluster::SetCommitCallback(
    std::function<void(net::NodeId, uint64_t, const Bytes&)> cb) {
  for (size_t i = 0; i < replicas_.size(); ++i) {
    replicas_[i]->SetCommitCallback(
        [this, i, cb](uint64_t seq, const Bytes& cmd) {
          executed_[i].push_back(cmd);
          cb(static_cast<net::NodeId>(i), seq, cmd);
        });
  }
}

bool PbftCluster::ReachedCommitCount(uint64_t count, size_t quorum) const {
  size_t reached = 0;
  for (const auto& log : executed_) {
    if (log.size() >= count) ++reached;
  }
  return reached >= quorum;
}

}  // namespace prever::consensus
