#ifndef PREVER_PIR_CPIR_H_
#define PREVER_PIR_CPIR_H_

#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/paillier.h"

namespace prever::pir {

/// Single-server computational PIR over Paillier (the XPIR [48] lineage the
/// paper cites). The client sends an encrypted selection vector
/// (Enc(0), …, Enc(1), …, Enc(0)); the server homomorphically computes
/// Σ sel_j · record_j = Enc(record_i) without learning i. Cost is linear in
/// the database size — the E5 benchmark shows exactly that shape.
class PaillierPirServer {
 public:
  /// Each record must fit into the Paillier plaintext space:
  /// record_size <= (modulus_bits / 8) - 2 bytes.
  PaillierPirServer(std::vector<Bytes> records, size_t record_size,
                    const crypto::PaillierPublicKey& pub);

  size_t num_records() const { return records_.size(); }
  size_t record_size() const { return record_size_; }

  /// Homomorphic dot product of the encrypted selection with the records.
  Result<crypto::PaillierCiphertext> Answer(
      const std::vector<crypto::PaillierCiphertext>& selection) const;

  Status Append(const Bytes& record);

 private:
  std::vector<crypto::BigInt> records_;  // Records as integers.
  size_t record_size_;
  crypto::PaillierPublicKey pub_;
};

/// Client side of the Paillier PIR.
class PaillierPirClient {
 public:
  PaillierPirClient(const crypto::PaillierKeyPair& key, uint64_t seed)
      : key_(key), drbg_(seed) {}

  Result<std::vector<crypto::PaillierCiphertext>> BuildQuery(
      size_t index, size_t num_records);

  Result<Bytes> DecodeAnswer(const crypto::PaillierCiphertext& answer,
                             size_t record_size);

  Result<Bytes> Fetch(size_t index, const PaillierPirServer& server);

 private:
  crypto::PaillierKeyPair key_;
  crypto::Drbg drbg_;
};

}  // namespace prever::pir

#endif  // PREVER_PIR_CPIR_H_
