#ifndef PREVER_PIR_XOR_PIR_H_
#define PREVER_PIR_XOR_PIR_H_

#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"

namespace prever::pir {

/// Two-server information-theoretic PIR (Chor et al. [31], the paper's RC3
/// starting point). The database is replicated on two non-colluding servers;
/// the client sends complementary random subset vectors, each server XORs
/// the selected records, and the client XORs the two answers to recover the
/// record. Neither server learns which index was retrieved.
class XorPirServer {
 public:
  /// All records must have the same size (`record_size`).
  XorPirServer(std::vector<Bytes> records, size_t record_size);

  size_t num_records() const { return records_.size(); }
  size_t record_size() const { return record_size_; }

  /// XOR of all records whose bit is set in the selection vector.
  Result<Bytes> Answer(const std::vector<uint8_t>& selection) const;

  /// RC3 update path: appends a record on both replicas (public data, so
  /// appends are public; what stays private is *which* records clients read
  /// when verifying constraints).
  Status Append(const Bytes& record);

  /// Server-side work counter (records XORed), for the E5 benchmark.
  uint64_t records_scanned() const { return records_scanned_; }

 private:
  std::vector<Bytes> records_;
  size_t record_size_;
  mutable uint64_t records_scanned_ = 0;
};

/// Client for a pair of XOR-PIR replicas.
class XorPirClient {
 public:
  explicit XorPirClient(uint64_t seed) : rng_(seed) {}

  /// Builds the two complementary queries for `index`.
  struct Query {
    std::vector<uint8_t> for_server0;
    std::vector<uint8_t> for_server1;
  };
  Query BuildQuery(size_t index, size_t num_records);

  /// Combines the two answers into the requested record.
  static Bytes Combine(const Bytes& answer0, const Bytes& answer1);

  /// End-to-end convenience against two in-process servers.
  Result<Bytes> Fetch(size_t index, const XorPirServer& s0,
                      const XorPirServer& s1);

 private:
  Rng rng_;
};

}  // namespace prever::pir

#endif  // PREVER_PIR_XOR_PIR_H_
