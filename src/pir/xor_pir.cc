#include "pir/xor_pir.h"

namespace prever::pir {

XorPirServer::XorPirServer(std::vector<Bytes> records, size_t record_size)
    : records_(std::move(records)), record_size_(record_size) {
  for (Bytes& r : records_) r.resize(record_size_, 0);
}

Result<Bytes> XorPirServer::Answer(const std::vector<uint8_t>& selection) const {
  if (selection.size() != records_.size()) {
    return Status::InvalidArgument("selection vector size mismatch");
  }
  Bytes out(record_size_, 0);
  for (size_t i = 0; i < records_.size(); ++i) {
    ++records_scanned_;
    if (!selection[i]) continue;
    for (size_t b = 0; b < record_size_; ++b) out[b] ^= records_[i][b];
  }
  return out;
}

Status XorPirServer::Append(const Bytes& record) {
  if (record.size() > record_size_) {
    return Status::InvalidArgument("record exceeds fixed record size");
  }
  Bytes padded = record;
  padded.resize(record_size_, 0);
  records_.push_back(std::move(padded));
  return Status::Ok();
}

XorPirClient::Query XorPirClient::BuildQuery(size_t index,
                                             size_t num_records) {
  Query q;
  q.for_server0.resize(num_records);
  q.for_server1.resize(num_records);
  for (size_t i = 0; i < num_records; ++i) {
    q.for_server0[i] = static_cast<uint8_t>(rng_.NextBelow(2));
    q.for_server1[i] = q.for_server0[i];
  }
  // Flip the target index on exactly one server.
  q.for_server1[index] ^= 1;
  return q;
}

Bytes XorPirClient::Combine(const Bytes& answer0, const Bytes& answer1) {
  Bytes out(answer0.size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = answer0[i] ^ answer1[i];
  return out;
}

Result<Bytes> XorPirClient::Fetch(size_t index, const XorPirServer& s0,
                                  const XorPirServer& s1) {
  if (index >= s0.num_records() || s0.num_records() != s1.num_records()) {
    return Status::InvalidArgument("index out of range or replica mismatch");
  }
  Query q = BuildQuery(index, s0.num_records());
  PREVER_ASSIGN_OR_RETURN(Bytes a0, s0.Answer(q.for_server0));
  PREVER_ASSIGN_OR_RETURN(Bytes a1, s1.Answer(q.for_server1));
  return Combine(a0, a1);
}

}  // namespace prever::pir
