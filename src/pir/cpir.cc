#include "pir/cpir.h"

namespace prever::pir {

PaillierPirServer::PaillierPirServer(std::vector<Bytes> records,
                                     size_t record_size,
                                     const crypto::PaillierPublicKey& pub)
    : record_size_(record_size), pub_(pub) {
  records_.reserve(records.size());
  for (Bytes& r : records) {
    r.resize(record_size_, 0);
    records_.push_back(crypto::BigInt::FromBytes(r));
  }
}

Result<crypto::PaillierCiphertext> PaillierPirServer::Answer(
    const std::vector<crypto::PaillierCiphertext>& selection) const {
  if (selection.size() != records_.size()) {
    return Status::InvalidArgument("selection vector size mismatch");
  }
  // Accumulate Π sel_j ^ record_j = Enc(Σ sel_j * record_j).
  crypto::PaillierCiphertext acc{crypto::BigInt(1)};  // Enc(0) w/ r=1 works
                                                      // as multiplicative id.
  for (size_t j = 0; j < records_.size(); ++j) {
    if (records_[j].IsZero()) continue;  // x^0 contributes nothing.
    crypto::PaillierCiphertext term =
        crypto::PaillierMulPlain(pub_, selection[j], records_[j]);
    acc = crypto::PaillierAdd(pub_, acc, term);
  }
  return acc;
}

Status PaillierPirServer::Append(const Bytes& record) {
  if (record.size() > record_size_) {
    return Status::InvalidArgument("record exceeds fixed record size");
  }
  Bytes padded = record;
  padded.resize(record_size_, 0);
  records_.push_back(crypto::BigInt::FromBytes(padded));
  return Status::Ok();
}

Result<std::vector<crypto::PaillierCiphertext>> PaillierPirClient::BuildQuery(
    size_t index, size_t num_records) {
  if (index >= num_records) {
    return Status::InvalidArgument("index out of range");
  }
  std::vector<crypto::PaillierCiphertext> query;
  query.reserve(num_records);
  for (size_t j = 0; j < num_records; ++j) {
    PREVER_ASSIGN_OR_RETURN(
        crypto::PaillierCiphertext ct,
        crypto::PaillierEncrypt(key_.pub,
                                crypto::BigInt(j == index ? 1 : 0), drbg_));
    query.push_back(std::move(ct));
  }
  return query;
}

Result<Bytes> PaillierPirClient::DecodeAnswer(
    const crypto::PaillierCiphertext& answer, size_t record_size) {
  PREVER_ASSIGN_OR_RETURN(crypto::BigInt plain,
                          crypto::PaillierDecrypt(key_, answer));
  return plain.ToBytesPadded(record_size);
}

Result<Bytes> PaillierPirClient::Fetch(size_t index,
                                       const PaillierPirServer& server) {
  size_t max_record = key_.pub.n.BitLength() / 8;
  if (server.record_size() + 2 > max_record) {
    return Status::InvalidArgument("record too large for plaintext space");
  }
  PREVER_ASSIGN_OR_RETURN(auto query,
                          BuildQuery(index, server.num_records()));
  PREVER_ASSIGN_OR_RETURN(crypto::PaillierCiphertext answer,
                          server.Answer(query));
  return DecodeAnswer(answer, server.record_size());
}

}  // namespace prever::pir
