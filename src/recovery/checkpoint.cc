#include "recovery/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/crc32.h"
#include "common/serial.h"
#include "mutate/mutation.h"
#include "obs/registry.h"
#include "obs/tracing.h"

namespace prever::recovery {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kCheckpointMagic = 0x50525643;  // "PRVC".
constexpr uint32_t kCheckpointFormat = 1;
constexpr char kFilePrefix[] = "ckpt-";
constexpr char kFileSuffix[] = ".ckpt";

obs::Counter& SavesCounter() {
  return *obs::Registry::Default().GetCounter(
      "prever_recovery_checkpoint_saves");
}
obs::Counter& LoadsCounter() {
  return *obs::Registry::Default().GetCounter(
      "prever_recovery_checkpoint_loads");
}
obs::Counter& QuarantineCounter() {
  return *obs::Registry::Default().GetCounter(
      "prever_recovery_checkpoints_quarantined");
}
obs::Counter& ReclaimedCounter() {
  return *obs::Registry::Default().GetCounter(
      "prever_recovery_log_bytes_reclaimed");
}
obs::Counter& ReplayedCounter() {
  return *obs::Registry::Default().GetCounter(
      "prever_recovery_replayed_entries");
}

std::string FileNameFor(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(kFilePrefix) + buf + kFileSuffix;
}

/// Parses "ckpt-<16 hex>.ckpt"; nullopt-style via ok flag.
bool ParseFileId(const std::string& name, uint64_t* id) {
  const std::string prefix = kFilePrefix;
  const std::string suffix = kFileSuffix;
  if (name.size() != prefix.size() + 16 + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = prefix.size(); i < prefix.size() + 16; ++i) {
    char c = name[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
    else return false;
    v = (v << 4) | digit;
  }
  *id = v;
  return true;
}

/// Reads every CRC32-framed record of a checkpoint file. Unlike the WAL's
/// clean-prefix recovery, ANY damage (torn header/payload, CRC mismatch,
/// trailing garbage) makes the whole checkpoint unusable: the file was
/// renamed into place only after a full flush, so damage means corruption,
/// not an interrupted append.
Result<std::vector<Bytes>> ReadRecords(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no checkpoint file: " + path);
  std::vector<Bytes> records;
  Status status = Status::Ok();
  for (;;) {
    uint8_t header[8];
    size_t got = std::fread(header, 1, 8, f);
    if (got == 0) break;  // Clean EOF.
    if (got < 8) {
      status = Status::Corruption("torn record header in " + path);
      break;
    }
    uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(header[i]) << (8 * i);
    }
    for (int i = 0; i < 4; ++i) {
      crc |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
    }
    constexpr uint32_t kMaxRecord = 64u << 20;
    if (len > kMaxRecord) {
      status = Status::Corruption("oversized record in " + path);
      break;
    }
    Bytes payload(len);
    if (len != 0 && std::fread(payload.data(), 1, len, f) != len) {
      status = Status::Corruption("torn record payload in " + path);
      break;
    }
    if (PREVER_MUTATION(RECOVERY_CRC_CHECK_SKIP, Crc32(payload) != crc,
                        false)) {
      status = Status::Corruption("record CRC mismatch in " + path);
      break;
    }
    records.push_back(std::move(payload));
  }
  std::fclose(f);
  if (!status.ok()) return status;
  return records;
}

Status WriteRecords(const std::string& path,
                    const std::vector<Bytes>& records) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open checkpoint tmp: " + path);
  }
  Bytes buffer;
  size_t total = 0;
  for (const Bytes& r : records) total += 8 + r.size();
  buffer.reserve(total);
  for (const Bytes& r : records) {
    uint32_t len = static_cast<uint32_t>(r.size());
    uint32_t crc = Crc32(r);
    for (int i = 0; i < 4; ++i) {
      buffer.push_back(static_cast<uint8_t>(len >> (8 * i)));
    }
    for (int i = 0; i < 4; ++i) {
      buffer.push_back(static_cast<uint8_t>(crc >> (8 * i)));
    }
    buffer.insert(buffer.end(), r.begin(), r.end());
  }
  bool ok = buffer.empty() ||
            std::fwrite(buffer.data(), 1, buffer.size(), f) == buffer.size();
  ok = ok && std::fflush(f) == 0;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(path.c_str());
    return Status::Internal("checkpoint write failed: " + path);
  }
  return Status::Ok();
}

Bytes EncodeManifest(const CheckpointManifest& m) {
  BinaryWriter w;
  w.WriteU32(kCheckpointMagic);
  w.WriteU32(kCheckpointFormat);
  w.WriteU64(m.checkpoint_id);
  w.WriteU64(m.consensus_seq);
  w.WriteU64(m.ledger_size);
  w.WriteBytes(m.ledger_root);
  w.WriteU64(m.db_version);
  w.WriteU64(m.catalog_revision);
  return w.Take();
}

Result<CheckpointManifest> DecodeManifest(const Bytes& data) {
  BinaryReader r(data);
  PREVER_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kCheckpointMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  PREVER_ASSIGN_OR_RETURN(uint32_t format, r.ReadU32());
  if (format != kCheckpointFormat) {
    return Status::Corruption("unknown checkpoint format " +
                              std::to_string(format));
  }
  CheckpointManifest m;
  PREVER_ASSIGN_OR_RETURN(m.checkpoint_id, r.ReadU64());
  PREVER_ASSIGN_OR_RETURN(m.consensus_seq, r.ReadU64());
  PREVER_ASSIGN_OR_RETURN(m.ledger_size, r.ReadU64());
  PREVER_ASSIGN_OR_RETURN(m.ledger_root, r.ReadBytes());
  PREVER_ASSIGN_OR_RETURN(m.db_version, r.ReadU64());
  PREVER_ASSIGN_OR_RETURN(m.catalog_revision, r.ReadU64());
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in manifest");
  return m;
}

Result<Checkpoint> ParseCheckpointFile(const std::string& path) {
  PREVER_ASSIGN_OR_RETURN(std::vector<Bytes> records, ReadRecords(path));
  if (records.empty()) return Status::Corruption("empty checkpoint file");
  PREVER_ASSIGN_OR_RETURN(CheckpointManifest manifest,
                          DecodeManifest(records[0]));
  // Fixed layout: manifest, ledger entries, serials, db image, app state.
  if (records.size() != 1 + manifest.ledger_size + 3) {
    return Status::Corruption("checkpoint record count mismatch");
  }
  std::vector<Bytes> entry_records(
      records.begin() + 1, records.begin() + 1 + manifest.ledger_size);
  PREVER_ASSIGN_OR_RETURN(ledger::LedgerDb ledger,
                          ledger::LedgerDb::FromRecords(entry_records));
  // The manifest's root commits to the ledger state; recompute and compare
  // so a checkpoint whose journal and manifest disagree (bit rot the CRC
  // happened to miss, or a buggy writer) is rejected rather than trusted.
  if (PREVER_MUTATION(RECOVERY_ROOT_CHECK_SKIP,
                      ledger.Digest().root != manifest.ledger_root, false)) {
    return Status::IntegrityViolation(
        "checkpoint Merkle root does not match recomputed ledger root");
  }
  Checkpoint ckpt;
  ckpt.manifest = std::move(manifest);
  ckpt.ledger = std::move(ledger);
  const Bytes& serials_blob = records[records.size() - 3];
  BinaryReader sr(serials_blob);
  PREVER_ASSIGN_OR_RETURN(uint64_t n_serials, sr.ReadU64());
  ckpt.spent_serials.reserve(n_serials);
  for (uint64_t i = 0; i < n_serials; ++i) {
    PREVER_ASSIGN_OR_RETURN(Bytes serial, sr.ReadBytes());
    ckpt.spent_serials.push_back(std::move(serial));
  }
  if (!sr.AtEnd()) return Status::Corruption("trailing bytes in serials");
  ckpt.db_image = records[records.size() - 2];
  ckpt.app_state = records[records.size() - 1];
  return ckpt;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {}

Status CheckpointStore::Init() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::Internal("cannot create checkpoint dir " + dir_ + ": " +
                            ec.message());
  }
  return Status::Ok();
}

std::vector<std::string> CheckpointStore::ListFiles() const {
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    uint64_t id = 0;
    if (ParseFileId(name, &id)) found.emplace_back(id, std::move(name));
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> names;
  names.reserve(found.size());
  for (auto& [id, name] : found) names.push_back(std::move(name));
  return names;
}

Result<uint64_t> CheckpointStore::Save(const CheckpointContents& contents) {
  if (contents.ledger == nullptr) {
    return Status::InvalidArgument("checkpoint needs a ledger");
  }
  uint64_t id = next_id_;
  for (const std::string& name : ListFiles()) {
    uint64_t existing = 0;
    if (ParseFileId(name, &existing) && existing >= id) id = existing + 1;
  }

  CheckpointManifest manifest;
  manifest.checkpoint_id = id;
  manifest.consensus_seq = contents.consensus_seq;
  manifest.ledger_size = contents.ledger->size();
  manifest.ledger_root = contents.ledger->Digest().root;
  manifest.db_version = contents.db_version;
  manifest.catalog_revision = contents.catalog_revision;

  std::vector<Bytes> records;
  records.reserve(2 + manifest.ledger_size + 2);
  records.push_back(EncodeManifest(manifest));
  for (Bytes& entry : contents.ledger->EncodeEntries()) {
    records.push_back(std::move(entry));
  }
  BinaryWriter serials;
  serials.WriteU64(contents.spent_serials.size());
  for (const Bytes& s : contents.spent_serials) serials.WriteBytes(s);
  records.push_back(serials.Take());
  records.push_back(contents.db_image);
  records.push_back(contents.app_state);

  std::string final_path = dir_ + "/" + FileNameFor(id);
  std::string tmp_path = final_path + ".tmp";
  PREVER_RETURN_IF_ERROR(WriteRecords(tmp_path, records));
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("checkpoint rename failed: " + final_path);
  }
  next_id_ = id + 1;
  SavesCounter().Inc();
  return id;
}

Result<Checkpoint> CheckpointStore::LoadLatest() {
  PREVER_CAUSAL_SPAN(causal_load, obs::TraceStage::kRecoverLoad);
  std::vector<std::string> files = ListFiles();
  // Newest first: a later checkpoint covers a longer prefix, so falling back
  // to an older one is safe (longer journal replay) while loading a stale
  // one as if it were the newest silently rewinds acknowledged state.
  if (PREVER_MUTATION(RECOVERY_STALE_CHECKPOINT_ACCEPT, true, false)) {
    std::reverse(files.begin(), files.end());
  }
  for (const std::string& name : files) {
    std::string path = dir_ + "/" + name;
    Result<Checkpoint> parsed = ParseCheckpointFile(path);
    if (parsed.ok()) {
      LoadsCounter().Inc();
      return parsed;
    }
    // Quarantine, never delete: keep the corrupt bytes for forensics while
    // guaranteeing this file is never considered again.
    std::string quarantine = path + ".quarantined";
    std::rename(path.c_str(), quarantine.c_str());
    ++quarantined_;
    QuarantineCounter().Inc();
  }
  return Status::NotFound("no intact checkpoint in " + dir_);
}

uint64_t CheckpointStore::GarbageCollect(size_t keep) {
  std::vector<std::string> files = ListFiles();
  uint64_t reclaimed = 0;
  size_t deletable = files.size() > keep ? files.size() - keep : 0;
  for (size_t i = 0; i < deletable; ++i) {
    std::string path = dir_ + "/" + files[i];
    std::error_code ec;
    uint64_t size = fs::file_size(path, ec);
    if (!ec && fs::remove(path, ec) && !ec) reclaimed += size;
  }
  if (reclaimed > 0) ReclaimedCounter().Inc(reclaimed);
  return reclaimed;
}

Bytes EncodeDatabaseImage(const storage::Database& db) {
  BinaryWriter w;
  w.WriteU64(db.version());
  std::vector<std::string> names = db.TableNames();
  w.WriteU32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    const storage::Table* table = *db.GetTable(name);
    w.WriteString(name);
    table->schema().EncodeTo(w);
    w.WriteU64(table->size());
    table->Scan([&w](const storage::Row& row) {
      w.WriteU32(static_cast<uint32_t>(row.size()));
      for (const storage::Value& v : row) v.EncodeTo(w);
      return true;
    });
  }
  return w.Take();
}

Result<uint64_t> RestoreDatabaseImage(const Bytes& image,
                                      storage::Database* db) {
  BinaryReader r(image);
  PREVER_ASSIGN_OR_RETURN(uint64_t version, r.ReadU64());
  PREVER_ASSIGN_OR_RETURN(uint32_t n_tables, r.ReadU32());
  for (uint32_t t = 0; t < n_tables; ++t) {
    PREVER_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    PREVER_ASSIGN_OR_RETURN(storage::Schema schema,
                            storage::Schema::DecodeFrom(r));
    PREVER_ASSIGN_OR_RETURN(uint64_t n_rows, r.ReadU64());
    PREVER_RETURN_IF_ERROR(db->CreateTable(name, schema));
    PREVER_ASSIGN_OR_RETURN(storage::Table * table, db->GetMutableTable(name));
    for (uint64_t i = 0; i < n_rows; ++i) {
      PREVER_ASSIGN_OR_RETURN(uint32_t n_values, r.ReadU32());
      storage::Row row;
      row.reserve(n_values);
      for (uint32_t j = 0; j < n_values; ++j) {
        PREVER_ASSIGN_OR_RETURN(storage::Value v,
                                storage::Value::DecodeFrom(r));
        row.push_back(std::move(v));
      }
      PREVER_RETURN_IF_ERROR(table->Insert(row));
    }
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in db image");
  return version;
}

Result<uint64_t> ReplayLedgerSuffix(const std::vector<Bytes>& records,
                                    ledger::LedgerDb* ledger) {
  PREVER_CAUSAL_SPAN(causal_replay, obs::TraceStage::kRecoverReplay);
  uint64_t appended = 0;
  for (const Bytes& record : records) {
    PREVER_ASSIGN_OR_RETURN(ledger::LedgerEntry entry,
                            ledger::LedgerEntry::Decode(record));
    // Entries the checkpoint already covers are skipped, NOT re-appended:
    // the journal always starts at sequence 0 of its epoch while the
    // checkpoint may cover an arbitrary prefix of it.
    if (PREVER_MUTATION(RECOVERY_REPLAY_OFF_BY_ONE,
                        entry.sequence < ledger->size(),
                        entry.sequence <= ledger->size())) {
      continue;
    }
    if (entry.sequence != ledger->size()) {
      return Status::Corruption("journal replay gap at sequence " +
                                std::to_string(ledger->size()));
    }
    ledger->Append(entry.payload, entry.timestamp);
    ++appended;
  }
  if (appended > 0) ReplayedCounter().Inc(appended);
  return appended;
}

}  // namespace prever::recovery
