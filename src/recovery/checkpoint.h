#ifndef PREVER_RECOVERY_CHECKPOINT_H_
#define PREVER_RECOVERY_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "ledger/ledger_db.h"
#include "storage/database.h"

namespace prever::recovery {

/// Durable checkpoints for crash recovery (DESIGN.md "Crash recovery & state
/// transfer"). A checkpoint file is a sequence of CRC32-framed records in the
/// WAL's on-disk format ([u32 len][u32 crc32(payload)][payload]):
///
///   record 0      manifest: magic/version, checkpoint id, consensus
///                 sequence number, ledger size + Merkle root, database
///                 version, constraint-catalog revision, section counts
///   records 1..n  one encoded LedgerEntry per journal entry
///   next          token spent-serial index (count + serials)
///   next          database image (EncodeDatabaseImage blob; may be empty)
///   next          opaque app/protocol state (consensus-layer blob)
///
/// Save writes "<file>.tmp", flushes, closes, then atomically renames into
/// place: a crash mid-write leaves either the previous checkpoint set intact
/// or a torn .tmp that the loader never considers. A corrupt *final* file
/// (flipped byte, truncated tail) fails a record CRC; LoadLatest quarantines
/// it (rename to *.quarantined) and falls back to the next-newest intact
/// checkpoint — the commit-journal suffix replay covers the difference with a
/// longer replay.
struct CheckpointManifest {
  uint64_t checkpoint_id = 0;  ///< Monotone per store; newest intact wins.
  uint64_t consensus_seq = 0;  ///< Consensus position the state covers.
  uint64_t ledger_size = 0;
  Bytes ledger_root;           ///< Merkle root at ledger_size.
  uint64_t db_version = 0;
  uint64_t catalog_revision = 0;
};

/// A loaded checkpoint. The ledger has been rebuilt from the embedded
/// journal and its recomputed Merkle root compared against the manifest.
struct Checkpoint {
  CheckpointManifest manifest;
  ledger::LedgerDb ledger;
  std::vector<Bytes> spent_serials;  ///< Token spent-serial index.
  Bytes db_image;                    ///< EncodeDatabaseImage blob (optional).
  Bytes app_state;                   ///< Opaque consensus/app blob.
};

/// What Save captures. The ledger is mandatory; everything else defaults to
/// empty so consensus-only callers (the ordering services) skip the engine
/// sections.
struct CheckpointContents {
  const ledger::LedgerDb* ledger = nullptr;
  uint64_t consensus_seq = 0;
  std::vector<Bytes> spent_serials;
  Bytes db_image;
  Bytes app_state;
  uint64_t db_version = 0;
  uint64_t catalog_revision = 0;
};

/// One directory of checkpoint files ("ckpt-<16-hex-id>.ckpt"). Not
/// thread-safe; each replica owns its store exclusively (the concurrency
/// test drives distinct stores from multiple threads).
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string dir);

  /// Creates the directory (parents included); call once before Save.
  Status Init();

  /// Writes a new checkpoint atomically; returns its id.
  Result<uint64_t> Save(const CheckpointContents& contents);

  /// Loads the newest intact checkpoint. Corrupt finals are quarantined
  /// (renamed *.quarantined) and skipped; NotFound when no intact
  /// checkpoint exists (callers fall back to full journal replay).
  Result<Checkpoint> LoadLatest();

  /// Deletes all but the newest `keep` checkpoint files; returns bytes
  /// reclaimed.
  uint64_t GarbageCollect(size_t keep);

  /// Final checkpoint files, ascending by id (no .tmp / .quarantined).
  std::vector<std::string> ListFiles() const;

  uint64_t quarantined() const { return quarantined_; }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  uint64_t next_id_ = 1;
  uint64_t quarantined_ = 0;
};

/// Serializes every table (name, schema, rows in key order) of `db`.
Bytes EncodeDatabaseImage(const storage::Database& db);

/// Rebuilds tables from an image into `db` (which must not already contain
/// tables of the same names). The recorded database version is returned so
/// the caller can cross-check the manifest.
Result<uint64_t> RestoreDatabaseImage(const Bytes& image,
                                      storage::Database* db);

/// Extends a checkpoint-restored ledger with the suffix of a commit journal:
/// records are encoded LedgerEntry values; entries already covered by the
/// checkpoint (sequence below the current size) are skipped, the rest must
/// extend contiguously. Returns the number of entries appended.
Result<uint64_t> ReplayLedgerSuffix(const std::vector<Bytes>& records,
                                    ledger::LedgerDb* ledger);

}  // namespace prever::recovery

#endif  // PREVER_RECOVERY_CHECKPOINT_H_
