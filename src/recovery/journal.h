#ifndef PREVER_RECOVERY_JOURNAL_H_
#define PREVER_RECOVERY_JOURNAL_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "storage/wal.h"

namespace prever::recovery {

/// One durably journaled commit event: a consensus position, the batch it
/// carried, and the ledger entries the commit appended (encoded LedgerEntry
/// values, ready for ReplayLedgerSuffix).
struct JournalEvent {
  uint64_t position = 0;  ///< Consensus sequence / log index of the commit.
  uint64_t batch_id = 0;  ///< Pipeline batch the commit delivered.
  std::vector<Bytes> entries;

  Bytes Encode() const;
  static Result<JournalEvent> Decode(const Bytes& record);
};

/// Per-replica durable commit journal layered on the WAL's CRC32 framing
/// (one WAL record per event). Recovery = checkpoint + the journal suffix
/// above the checkpoint's consensus sequence; TruncateBelow garbage-collects
/// the prefix a newer checkpoint covers.
class CommitJournal {
 public:
  CommitJournal() = default;

  /// Opens (creating if needed) the journal for appending.
  Status Open(const std::string& path);

  bool is_open() const { return wal_.is_open(); }

  /// Durably appends one commit event (fwrite + flush, torn-tail safe).
  Status Append(const JournalEvent& event);

  void Close();

  /// Rewrites the journal keeping only events with position > floor
  /// (write tmp, atomic rename, reopen). Returns bytes reclaimed.
  Result<uint64_t> TruncateBelow(uint64_t floor);

  /// Decodes all intact events; a torn tail yields the clean prefix and
  /// sets `truncated`. A missing file is an empty journal.
  static Result<std::vector<JournalEvent>> Recover(const std::string& path,
                                                   bool* truncated = nullptr);

 private:
  storage::WriteAheadLog wal_;
  std::string path_;
};

}  // namespace prever::recovery

#endif  // PREVER_RECOVERY_JOURNAL_H_
