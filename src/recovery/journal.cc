#include "recovery/journal.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "common/serial.h"
#include "obs/registry.h"

namespace prever::recovery {

namespace {

obs::Counter& JournalReclaimedCounter() {
  static obs::Counter* c = obs::Registry::Default().GetCounter(
      "prever_recovery_log_bytes_reclaimed");
  return *c;
}

}  // namespace

Bytes JournalEvent::Encode() const {
  BinaryWriter w;
  w.WriteU64(position);
  w.WriteU64(batch_id);
  w.WriteU32(static_cast<uint32_t>(entries.size()));
  for (const Bytes& e : entries) w.WriteBytes(e);
  return w.Take();
}

Result<JournalEvent> JournalEvent::Decode(const Bytes& record) {
  BinaryReader r(record);
  JournalEvent event;
  PREVER_ASSIGN_OR_RETURN(event.position, r.ReadU64());
  PREVER_ASSIGN_OR_RETURN(event.batch_id, r.ReadU64());
  PREVER_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  event.entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PREVER_ASSIGN_OR_RETURN(Bytes e, r.ReadBytes());
    event.entries.push_back(std::move(e));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in journal event");
  return event;
}

Status CommitJournal::Open(const std::string& path) {
  path_ = path;
  return wal_.Open(path);
}

Status CommitJournal::Append(const JournalEvent& event) {
  return wal_.Append(event.Encode());
}

void CommitJournal::Close() { wal_.Close(); }

Result<uint64_t> CommitJournal::TruncateBelow(uint64_t floor) {
  PREVER_ASSIGN_OR_RETURN(std::vector<JournalEvent> events,
                          Recover(path_, nullptr));
  std::error_code ec;
  uint64_t before = 0;
  if (auto size = std::filesystem::file_size(path_, ec); !ec) before = size;

  // Rewrite the suffix into a sibling tmp file, then atomically swap it in.
  // The journal stays intact (old or new) through any crash point.
  std::string tmp = path_ + ".tmp";
  wal_.Close();
  {
    storage::WriteAheadLog rewrite;
    std::remove(tmp.c_str());
    PREVER_RETURN_IF_ERROR(rewrite.Open(tmp));
    std::vector<Bytes> keep;
    for (const JournalEvent& e : events) {
      if (e.position > floor) keep.push_back(e.Encode());
    }
    PREVER_RETURN_IF_ERROR(rewrite.AppendBatch(keep));
    rewrite.Close();
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::Internal("journal rename failed: " + path_);
  }
  PREVER_RETURN_IF_ERROR(wal_.Open(path_));

  uint64_t after = 0;
  if (auto size = std::filesystem::file_size(path_, ec); !ec) after = size;
  uint64_t reclaimed = before > after ? before - after : 0;
  JournalReclaimedCounter().Inc(reclaimed);
  return reclaimed;
}

Result<std::vector<JournalEvent>> CommitJournal::Recover(
    const std::string& path, bool* truncated) {
  PREVER_ASSIGN_OR_RETURN(std::vector<Bytes> records,
                          storage::WriteAheadLog::Recover(path, truncated));
  std::vector<JournalEvent> events;
  events.reserve(records.size());
  for (const Bytes& record : records) {
    PREVER_ASSIGN_OR_RETURN(JournalEvent event, JournalEvent::Decode(record));
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace prever::recovery
