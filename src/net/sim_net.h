#ifndef PREVER_NET_SIM_NET_H_
#define PREVER_NET_SIM_NET_H_

#include <functional>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "obs/tracing.h"

namespace prever::net {

using NodeId = uint32_t;

/// A network message between simulated nodes. `type` is protocol-defined
/// (each consensus protocol declares its own message-type enum); `payload`
/// is an opaque canonical encoding. `trace` piggybacks the sender's causal
/// trace context across the hop: SimNetwork captures it at Send and
/// reinstalls it around handler delivery, so spans opened inside a handler
/// parent to the transaction that caused the message.
struct Message {
  NodeId from = 0;
  NodeId to = 0;
  uint32_t type = 0;
  Bytes payload;
  obs::TraceContext trace;
};

/// Configuration of the simulated network fabric.
struct SimNetConfig {
  SimTime min_latency = 1 * kMillisecond;  ///< One-way delivery minimum.
  SimTime max_latency = 5 * kMillisecond;  ///< One-way delivery maximum.
  double drop_rate = 0.0;                  ///< Probability a message is lost.
  uint64_t seed = 42;                      ///< Jitter/drop randomness.
};

/// Deterministic discrete-event network simulator. Nodes register handlers;
/// Send/Broadcast enqueue deliveries at now + latency; Run() drains events
/// in timestamp order, advancing the shared simulated clock. Supports
/// partitions and message drops for fault-injection tests.
///
/// Determinism: all randomness comes from the seeded Rng, and ties in
/// delivery time break by enqueue sequence number.
class SimNetwork {
 public:
  using Handler = std::function<void(const Message&)>;

  explicit SimNetwork(SimNetConfig config = SimNetConfig());

  /// Registers a node; returns its id (dense, starting at 0).
  NodeId AddNode(Handler handler);

  size_t num_nodes() const { return handlers_.size(); }
  SimTime Now() const { return clock_.Now(); }
  /// The simulated clock, for SimScopedSpan tracing against sim time.
  const SimClock& clock() const { return clock_; }

  /// Queues a message for delivery (subject to drops/partitions).
  void Send(NodeId from, NodeId to, uint32_t type, const Bytes& payload);

  /// Sends to every node except `from`.
  void Broadcast(NodeId from, uint32_t type, const Bytes& payload);

  /// Schedules an arbitrary callback (protocol timer) after `delay`.
  void ScheduleAfter(SimTime delay, std::function<void()> fn);

  /// Cuts connectivity between a and b (both directions).
  void Partition(NodeId a, NodeId b);
  void Heal(NodeId a, NodeId b);
  void HealAll();

  /// Drops all traffic to/from the node (simulated crash).
  void Isolate(NodeId node);
  void Reconnect(NodeId node);

  /// Crash-stop at the fabric level: unlike Isolate, messages already in
  /// flight toward the node are discarded at delivery time, so a crashed
  /// node observes nothing sent before OR during the outage. RestartNode
  /// resumes delivery for traffic sent after the restart.
  void CrashNode(NodeId node);
  void RestartNode(NodeId node);
  bool IsCrashed(NodeId node) const { return crashed_.count(node) > 0; }

  /// Overrides the latency range for one link (both directions), modeling a
  /// slow or degraded path. Cleared per-link or all at once.
  void SetLinkLatency(NodeId a, NodeId b, SimTime min_latency,
                      SimTime max_latency);
  void ClearLinkLatency(NodeId a, NodeId b);
  void ClearLinkLatencies();

  /// Adjusts the global drop probability at runtime (loss-burst injection).
  void set_drop_rate(double rate) { config_.drop_rate = rate; }
  double drop_rate() const { return config_.drop_rate; }

  /// Scales delays of subsequently scheduled timers (ScheduleAfter), i.e.
  /// clock skew between protocol timers and network latency. 1.0 = nominal;
  /// values < 1 fire timers early, > 1 late. Delivery latency is unaffected.
  void SetTimerScale(double scale);
  double timer_scale() const { return timer_scale_; }

  /// Runs queued events until the queue is empty or `until` is reached.
  /// Returns the number of events processed.
  size_t RunUntil(SimTime until);
  size_t RunUntilIdle();

  /// Processes exactly one event if any is queued.
  bool Step();

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

  /// Fault-schedule event totals (cumulative since construction).
  struct FaultStats {
    uint64_t partitions = 0;
    uint64_t heals = 0;
    uint64_t isolates = 0;
    uint64_t reconnects = 0;
    uint64_t crashes = 0;
    uint64_t restarts = 0;
  };
  const FaultStats& fault_stats() const { return fault_stats_; }

  /// One-line JSON summary of traffic + fault counters, attached to sim-test
  /// failure output for triage.
  std::string StatsJson() const;

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  bool Blocked(NodeId a, NodeId b) const;
  SimTime SampleLatency(NodeId from, NodeId to);
  static std::pair<NodeId, NodeId> LinkKey(NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  SimNetConfig config_;
  Rng rng_;
  SimClock clock_;
  std::vector<Handler> handlers_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  uint64_t next_seq_ = 0;
  std::set<std::pair<NodeId, NodeId>> partitions_;
  std::set<NodeId> isolated_;
  std::set<NodeId> crashed_;
  std::map<std::pair<NodeId, NodeId>, std::pair<SimTime, SimTime>>
      link_latency_;
  double timer_scale_ = 1.0;
  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t bytes_sent_ = 0;
  FaultStats fault_stats_;
};

}  // namespace prever::net

#endif  // PREVER_NET_SIM_NET_H_
