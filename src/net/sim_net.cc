#include "net/sim_net.h"

#include "obs/json.h"
#include "obs/registry.h"

namespace prever::net {

namespace {

/// Process-global mirrors in the default registry so bench JSON blobs report
/// fabric traffic. Per-instance figures stay in the SimNetwork members.
struct NetCounters {
  obs::Counter* sent;
  obs::Counter* dropped;
  obs::Counter* delivered;
  obs::Counter* partitions;
  obs::Counter* crashes;

  static NetCounters& Get() {
    static NetCounters c = [] {
      obs::Registry& r = obs::Registry::Default();
      return NetCounters{
          r.GetCounter("prever_net_msgs_total", {{"outcome", "sent"}}),
          r.GetCounter("prever_net_msgs_total", {{"outcome", "dropped"}}),
          r.GetCounter("prever_net_msgs_total", {{"outcome", "delivered"}}),
          r.GetCounter("prever_net_fault_events_total",
                       {{"kind", "partition"}}),
          r.GetCounter("prever_net_fault_events_total", {{"kind", "crash"}}),
      };
    }();
    return c;
  }
};

}  // namespace

SimNetwork::SimNetwork(SimNetConfig config)
    : config_(config), rng_(config.seed) {}

NodeId SimNetwork::AddNode(Handler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<NodeId>(handlers_.size() - 1);
}

bool SimNetwork::Blocked(NodeId a, NodeId b) const {
  if (isolated_.count(a) || isolated_.count(b)) return true;
  if (crashed_.count(a) || crashed_.count(b)) return true;
  return partitions_.count(LinkKey(a, b)) > 0;
}

SimTime SimNetwork::SampleLatency(NodeId from, NodeId to) {
  SimTime lo = config_.min_latency;
  SimTime hi = config_.max_latency;
  auto it = link_latency_.find(LinkKey(from, to));
  if (it != link_latency_.end()) {
    lo = it->second.first;
    hi = it->second.second;
  }
  if (hi <= lo) return lo;
  return lo + rng_.NextBelow(hi - lo + 1);
}

void SimNetwork::Send(NodeId from, NodeId to, uint32_t type,
                      const Bytes& payload) {
  ++messages_sent_;
  NetCounters::Get().sent->Inc();
  bytes_sent_ += payload.size();
  if (to >= handlers_.size()) return;
  if (Blocked(from, to) || rng_.NextBool(config_.drop_rate)) {
    ++messages_dropped_;
    NetCounters::Get().dropped->Inc();
    return;
  }
  Message msg{from, to, type, payload, obs::Tracer::CurrentContext()};
  obs::Tracer& tracer = obs::Tracer::Get();
  if (!msg.trace.sampled() && tracer.trace_unrooted_messages()) {
    // Sim-harness forensics: pure consensus scenarios have no engine submit
    // roots, so mint a per-message root here — otherwise every hop instant
    // is dropped as unsampled and failure-report tails come back empty.
    msg.trace = tracer.MintTrace();
  }
  tracer.Instant(msg.trace, obs::TraceStage::kNetSend, type);
  SimTime deliver_at = clock_.Now() + SampleLatency(from, to);
  queue_.push(Event{deliver_at, next_seq_++, [this, msg = std::move(msg)]() {
                      // Dropped at delivery time if the target crashed while
                      // the message was in flight.
                      if (crashed_.count(msg.to)) {
                        ++messages_dropped_;
                        NetCounters::Get().dropped->Inc();
                        return;
                      }
                      ++messages_delivered_;
                      NetCounters::Get().delivered->Inc();
                      // Reinstall the sender's causal context for the
                      // handler: spans it opens parent across the hop.
                      obs::ScopedTraceContext hop(msg.trace);
                      obs::Tracer::Get().Instant(
                          msg.trace, obs::TraceStage::kNetDeliver, msg.type);
                      handlers_[msg.to](msg);
                    }});
}

void SimNetwork::Broadcast(NodeId from, uint32_t type, const Bytes& payload) {
  for (NodeId to = 0; to < handlers_.size(); ++to) {
    if (to != from) Send(from, to, type, payload);
  }
}

void SimNetwork::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  if (timer_scale_ != 1.0) {
    delay = static_cast<SimTime>(static_cast<double>(delay) * timer_scale_);
  }
  queue_.push(Event{clock_.Now() + delay, next_seq_++, std::move(fn)});
}

void SimNetwork::Partition(NodeId a, NodeId b) {
  partitions_.insert(a < b ? std::make_pair(a, b) : std::make_pair(b, a));
  ++fault_stats_.partitions;
  NetCounters::Get().partitions->Inc();
}

void SimNetwork::Heal(NodeId a, NodeId b) {
  partitions_.erase(a < b ? std::make_pair(a, b) : std::make_pair(b, a));
  ++fault_stats_.heals;
}

void SimNetwork::HealAll() {
  partitions_.clear();
  ++fault_stats_.heals;
}

void SimNetwork::Isolate(NodeId node) {
  isolated_.insert(node);
  ++fault_stats_.isolates;
}

void SimNetwork::Reconnect(NodeId node) {
  isolated_.erase(node);
  ++fault_stats_.reconnects;
}

void SimNetwork::CrashNode(NodeId node) {
  crashed_.insert(node);
  ++fault_stats_.crashes;
  NetCounters::Get().crashes->Inc();
}

void SimNetwork::RestartNode(NodeId node) {
  crashed_.erase(node);
  ++fault_stats_.restarts;
}

void SimNetwork::SetLinkLatency(NodeId a, NodeId b, SimTime min_latency,
                                SimTime max_latency) {
  link_latency_[LinkKey(a, b)] = {min_latency, max_latency};
}

void SimNetwork::ClearLinkLatency(NodeId a, NodeId b) {
  link_latency_.erase(LinkKey(a, b));
}

void SimNetwork::ClearLinkLatencies() { link_latency_.clear(); }

void SimNetwork::SetTimerScale(double scale) {
  timer_scale_ = scale > 0.0 ? scale : 1.0;
}

bool SimNetwork::Step() {
  if (queue_.empty()) return false;
  // Flight-recorder records made while this event runs carry our simulated
  // clock as their second timestamp.
  obs::Tracer::SetThreadSimClock(&clock_);
  Event ev = queue_.top();
  queue_.pop();
  clock_.AdvanceTo(ev.time);
  ev.fn();
  return true;
}

size_t SimNetwork::RunUntil(SimTime until) {
  size_t processed = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    Step();
    ++processed;
  }
  clock_.AdvanceTo(until);
  return processed;
}

size_t SimNetwork::RunUntilIdle() {
  size_t processed = 0;
  while (Step()) ++processed;
  return processed;
}

std::string SimNetwork::StatsJson() const {
  obs::Json doc = obs::Json::Object();
  doc.Set("msgs_sent", obs::Json::Int(messages_sent_));
  doc.Set("msgs_dropped", obs::Json::Int(messages_dropped_));
  doc.Set("msgs_delivered", obs::Json::Int(messages_delivered_));
  doc.Set("bytes_sent", obs::Json::Int(bytes_sent_));
  doc.Set("partitions", obs::Json::Int(fault_stats_.partitions));
  doc.Set("heals", obs::Json::Int(fault_stats_.heals));
  doc.Set("isolates", obs::Json::Int(fault_stats_.isolates));
  doc.Set("reconnects", obs::Json::Int(fault_stats_.reconnects));
  doc.Set("crashes", obs::Json::Int(fault_stats_.crashes));
  doc.Set("restarts", obs::Json::Int(fault_stats_.restarts));
  doc.Set("now_us", obs::Json::Int(clock_.Now()));
  return doc.Dump();
}

}  // namespace prever::net
