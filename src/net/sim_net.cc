#include "net/sim_net.h"

namespace prever::net {

SimNetwork::SimNetwork(SimNetConfig config)
    : config_(config), rng_(config.seed) {}

NodeId SimNetwork::AddNode(Handler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<NodeId>(handlers_.size() - 1);
}

bool SimNetwork::Blocked(NodeId a, NodeId b) const {
  if (isolated_.count(a) || isolated_.count(b)) return true;
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  return partitions_.count(key) > 0;
}

SimTime SimNetwork::SampleLatency() {
  if (config_.max_latency <= config_.min_latency) return config_.min_latency;
  SimTime span = config_.max_latency - config_.min_latency;
  return config_.min_latency + rng_.NextBelow(span + 1);
}

void SimNetwork::Send(NodeId from, NodeId to, uint32_t type,
                      const Bytes& payload) {
  ++messages_sent_;
  bytes_sent_ += payload.size();
  if (to >= handlers_.size()) return;
  if (Blocked(from, to) || rng_.NextBool(config_.drop_rate)) {
    ++messages_dropped_;
    return;
  }
  Message msg{from, to, type, payload};
  SimTime deliver_at = clock_.Now() + SampleLatency();
  queue_.push(Event{deliver_at, next_seq_++, [this, msg = std::move(msg)]() {
                      handlers_[msg.to](msg);
                    }});
}

void SimNetwork::Broadcast(NodeId from, uint32_t type, const Bytes& payload) {
  for (NodeId to = 0; to < handlers_.size(); ++to) {
    if (to != from) Send(from, to, type, payload);
  }
}

void SimNetwork::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  queue_.push(Event{clock_.Now() + delay, next_seq_++, std::move(fn)});
}

void SimNetwork::Partition(NodeId a, NodeId b) {
  partitions_.insert(a < b ? std::make_pair(a, b) : std::make_pair(b, a));
}

void SimNetwork::Heal(NodeId a, NodeId b) {
  partitions_.erase(a < b ? std::make_pair(a, b) : std::make_pair(b, a));
}

void SimNetwork::HealAll() { partitions_.clear(); }

void SimNetwork::Isolate(NodeId node) { isolated_.insert(node); }

void SimNetwork::Reconnect(NodeId node) { isolated_.erase(node); }

bool SimNetwork::Step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  clock_.AdvanceTo(ev.time);
  ev.fn();
  return true;
}

size_t SimNetwork::RunUntil(SimTime until) {
  size_t processed = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    Step();
    ++processed;
  }
  clock_.AdvanceTo(until);
  return processed;
}

size_t SimNetwork::RunUntilIdle() {
  size_t processed = 0;
  while (Step()) ++processed;
  return processed;
}

}  // namespace prever::net
