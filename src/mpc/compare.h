#ifndef PREVER_MPC_COMPARE_H_
#define PREVER_MPC_COMPARE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "mpc/secure_agg.h"

namespace prever::mpc {

/// Secure bounded-aggregate check (the core of RC2's decentralized path):
/// n federated data managers each hold a private contribution x_i; they
/// jointly learn ONLY the bit (Σ x_i <= bound) — never the sum itself, never
/// each other's contributions. This is exactly what a privacy-preserving
/// FLSA check needs: "would this worker's total hours stay within 40?"
///
/// Protocol (semi-honest, SPDZ-style offline dealer):
///   offline: a dealer distributes (a) additive shares of a uniform mask r
///            mod 2^k, (b) XOR-shares of r's bits, (c) Beaver bit triples.
///   online:  1. parties open c = S + r mod 2^k (uniform, leaks nothing);
///            2. a GMW boolean circuit computes bit-shares of S = c - r
///               (one AND gate per bit for the borrow chain);
///            3. a comparison circuit against the public bound produces a
///               shared "greater-than" bit (one AND gate per bit);
///            4. only that single bit is opened.
///
/// The dealer never sees inputs; parties never see the sum. The paper's
/// external authority (which already issues regulations) is a natural
/// dealer. Malicious security would add MACs (SPDZ); out of scope here.
class SecureComparison {
 public:
  /// Returns (sum of private_inputs) <= bound, revealing nothing else.
  /// Requires sum < 2^k_bits and bound < 2^k_bits; k_bits <= 62.
  static Result<bool> SumLessEqual(const std::vector<uint64_t>& private_inputs,
                                   uint64_t bound, size_t k_bits,
                                   Rng& dealer_rng,
                                   MpcTranscript* transcript = nullptr);
};

}  // namespace prever::mpc

#endif  // PREVER_MPC_COMPARE_H_
