#include "mpc/secure_agg.h"

#include "crypto/shamir.h"

namespace prever::mpc {

Result<uint64_t> SecureAggregation::Sum(
    const std::vector<uint64_t>& private_inputs, Rng& rng,
    MpcTranscript* transcript) {
  size_t n = private_inputs.size();
  if (n == 0) return Status::InvalidArgument("no parties");
  // Phase 1: every party shares its input — party i sends share j to party j.
  // received[j][i] is party i's share destined for party j.
  std::vector<std::vector<uint64_t>> received(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint64_t> shares = crypto::AdditiveShare(private_inputs[i], n, rng);
    for (size_t j = 0; j < n; ++j) received[j].push_back(shares[j]);
  }
  if (transcript != nullptr) transcript->Exchange(n, sizeof(uint64_t));

  // Phase 2: each party sums what it received and publishes the partial sum.
  std::vector<uint64_t> partials(n, 0);
  for (size_t j = 0; j < n; ++j) {
    for (uint64_t s : received[j]) partials[j] += s;
  }
  if (transcript != nullptr) transcript->Exchange(n, sizeof(uint64_t));

  // Opening: the sum of partials is the sum of inputs.
  uint64_t total = 0;
  for (uint64_t p : partials) total += p;
  return total;
}

}  // namespace prever::mpc
