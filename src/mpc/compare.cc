#include "mpc/compare.h"

namespace prever::mpc {

namespace {

/// A bit XOR-shared among n parties: bit == XOR of all entries.
using BitShares = std::vector<uint8_t>;

BitShares XorShareBit(int bit, size_t n, Rng& rng) {
  BitShares shares(n);
  uint8_t acc = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    shares[i] = static_cast<uint8_t>(rng.NextBelow(2));
    acc ^= shares[i];
  }
  shares[n - 1] = static_cast<uint8_t>(bit) ^ acc;
  return shares;
}

/// Public constant as shares: party 0 holds the bit.
BitShares PublicBit(int bit, size_t n) {
  BitShares shares(n, 0);
  shares[0] = static_cast<uint8_t>(bit);
  return shares;
}

BitShares Xor(const BitShares& a, const BitShares& b) {
  BitShares out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

int OpenBit(const BitShares& a, MpcTranscript* transcript) {
  if (transcript != nullptr) transcript->Exchange(a.size(), 1);
  uint8_t v = 0;
  for (uint8_t s : a) v ^= s;
  return v;
}

/// Beaver bit triple: XOR-shares of random a, b and of c = a AND b.
struct BitTriple {
  BitShares a, b, c;
};

BitTriple DealTriple(size_t n, Rng& rng) {
  int a = static_cast<int>(rng.NextBelow(2));
  int b = static_cast<int>(rng.NextBelow(2));
  return BitTriple{XorShareBit(a, n, rng), XorShareBit(b, n, rng),
                   XorShareBit(a & b, n, rng)};
}

/// GMW AND gate via a Beaver triple: opens d = x^a and e = y^b, then
/// z = c ^ (d&b) ^ (e&a) ^ (d&e as public constant).
BitShares AndGate(const BitShares& x, const BitShares& y,
                  const BitTriple& triple, MpcTranscript* transcript) {
  int d = OpenBit(Xor(x, triple.a), transcript);
  int e = OpenBit(Xor(y, triple.b), transcript);
  size_t n = x.size();
  BitShares z = triple.c;
  if (d) z = Xor(z, triple.b);
  if (e) z = Xor(z, triple.a);
  if (d && e) z = Xor(z, PublicBit(1, n));
  return z;
}

}  // namespace

Result<bool> SecureComparison::SumLessEqual(
    const std::vector<uint64_t>& private_inputs, uint64_t bound, size_t k_bits,
    Rng& dealer_rng, MpcTranscript* transcript) {
  size_t n = private_inputs.size();
  if (n == 0) return Status::InvalidArgument("no parties");
  if (k_bits == 0 || k_bits > 62) {
    return Status::InvalidArgument("k_bits must be in [1, 62]");
  }
  const uint64_t modulus = 1ULL << k_bits;
  uint64_t sum_check = 0;
  for (uint64_t x : private_inputs) sum_check += x;
  if (sum_check >= modulus) {
    return Status::InvalidArgument("aggregate exceeds 2^k_bits domain");
  }
  if (bound >= modulus) return true;  // Trivially satisfied.

  // ---- Offline phase: dealer randomness ----
  uint64_t r = dealer_rng.NextBelow(modulus);
  // Additive shares of r mod 2^k.
  std::vector<uint64_t> r_add(n);
  {
    uint64_t acc = 0;
    for (size_t i = 0; i + 1 < n; ++i) {
      r_add[i] = dealer_rng.NextBelow(modulus);
      acc = (acc + r_add[i]) & (modulus - 1);
    }
    r_add[n - 1] = (r - acc) & (modulus - 1);
  }
  // XOR-shares of r's bits.
  std::vector<BitShares> r_bits(k_bits);
  for (size_t j = 0; j < k_bits; ++j) {
    r_bits[j] = XorShareBit(static_cast<int>((r >> j) & 1), n, dealer_rng);
  }

  // ---- Online phase 1: open c = S + r mod 2^k ----
  // Party i's share of S is its own private input; of c, input + r-share.
  uint64_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    c = (c + private_inputs[i] + r_add[i]) & (modulus - 1);
  }
  if (transcript != nullptr) transcript->Exchange(n, sizeof(uint64_t));

  // ---- Online phase 2: bit-shares of S = c - r via borrow chain ----
  // diff_j = c_j ^ r_j ^ borrow_j;
  // borrow_{j+1} = r_j AND borrow_j            when c_j == 1
  //              = r_j ^ (NOT r_j AND borrow)  when c_j == 0
  //              = r_j ^ borrow ^ (r_j AND borrow).
  std::vector<BitShares> s_bits(k_bits);
  BitShares borrow = PublicBit(0, n);
  for (size_t j = 0; j < k_bits; ++j) {
    int c_j = static_cast<int>((c >> j) & 1);
    // diff = c_j ^ r_j ^ borrow.
    s_bits[j] = Xor(Xor(PublicBit(c_j, n), r_bits[j]), borrow);
    // One AND between shared r_j and shared borrow.
    BitTriple triple = DealTriple(n, dealer_rng);
    BitShares r_and_b = AndGate(r_bits[j], borrow, triple, transcript);
    if (c_j == 1) {
      borrow = r_and_b;
    } else {
      borrow = Xor(Xor(r_bits[j], borrow), r_and_b);
    }
  }

  // ---- Online phase 3: compare S against the public bound (MSB first) ----
  // gt accumulates "S > bound"; eq tracks prefix equality.
  BitShares gt = PublicBit(0, n);
  BitShares eq = PublicBit(1, n);
  for (size_t j = k_bits; j-- > 0;) {
    int b_j = static_cast<int>((bound >> j) & 1);
    BitTriple triple = DealTriple(n, dealer_rng);
    BitShares eq_and_s = AndGate(eq, s_bits[j], triple, transcript);
    if (b_j == 0) {
      // S_j = 1 with equal prefix ⇒ S > bound (disjoint events: XOR is OR).
      gt = Xor(gt, eq_and_s);
      // eq stays only if s_j == 0: eq ^ (eq AND s_j).
      eq = Xor(eq, eq_and_s);
    } else {
      // eq stays only if s_j == 1: eq AND s_j.
      eq = eq_and_s;
    }
  }

  // ---- Online phase 4: open only the result bit ----
  int greater = OpenBit(gt, transcript);
  return greater == 0;
}

}  // namespace prever::mpc
