#ifndef PREVER_MPC_SECURE_AGG_H_
#define PREVER_MPC_SECURE_AGG_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace prever::mpc {

/// Counters for protocol-cost accounting (benchmarked in E3/E4): every
/// simulated network exchange increments these.
struct MpcTranscript {
  uint64_t rounds = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;

  void Exchange(size_t parties, size_t bytes_per_msg) {
    ++rounds;
    messages += parties * (parties - 1);
    bytes += parties * (parties - 1) * bytes_per_msg;
  }
};

/// Secure aggregation over additive shares (RC2, decentralized path):
/// each data manager splits its private contribution into additive shares,
/// one per manager; every manager sums the shares it received; the opened
/// share-sums reveal only the total, never any individual contribution.
///
/// This is the classic "mask-and-sum" federation protocol; the simulation
/// runs all parties in-process but the data flow is exactly the protocol's.
class SecureAggregation {
 public:
  /// Aggregates `private_inputs` (one per party) without any party seeing
  /// another's input. Returns the sum mod 2^64 and updates the transcript.
  static Result<uint64_t> Sum(const std::vector<uint64_t>& private_inputs,
                              Rng& rng, MpcTranscript* transcript = nullptr);
};

}  // namespace prever::mpc

#endif  // PREVER_MPC_SECURE_AGG_H_
