#ifndef PREVER_STORAGE_DATABASE_H_
#define PREVER_STORAGE_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace prever::storage {

/// A single mutation against one table. Mutations are the unit of WAL
/// logging and — one level up — the payload of a PReVer `Update`.
struct Mutation {
  enum class Op : uint8_t { kInsert = 0, kUpdate = 1, kUpsert = 2, kDelete = 3 };

  Op op = Op::kInsert;
  std::string table;
  Row row;     ///< For insert/update/upsert.
  Value key;   ///< For delete.

  void EncodeTo(BinaryWriter& w) const;
  static Result<Mutation> DecodeFrom(BinaryReader& r);
  Bytes Encode() const;
  static Result<Mutation> Decode(const Bytes& data);
};

/// Multi-table database owned by a data manager. Optionally durable via a
/// write-ahead log: every applied mutation is logged before it mutates the
/// table, and `RecoverFrom` replays a log into a fresh database.
class Database {
 public:
  Database() = default;

  /// Enables durability. Call before applying mutations.
  Status EnableWal(const std::string& path);

  Status CreateTable(const std::string& name, const Schema& schema);
  bool HasTable(const std::string& name) const;
  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> GetMutableTable(const std::string& name);

  /// All table names in deterministic (map) order — lets the checkpoint
  /// serializer (src/recovery/) enumerate state without a side channel.
  std::vector<std::string> TableNames() const;

  /// Validates and applies one mutation (WAL-first when durable).
  Status Apply(const Mutation& mutation);

  /// Number of successfully applied mutations (the database version).
  uint64_t version() const { return version_; }

  /// Commit observers: invoked after every successfully applied mutation
  /// (Apply and ReplayLog), with the mutation and the post-commit version.
  /// Incremental verification caches hang off this hook to fold committed
  /// deltas into their aggregates. Observers must not mutate the database.
  using CommitObserver = std::function<void(const Mutation&, uint64_t)>;

  /// Registers an observer; returns an id for RemoveCommitObserver.
  uint64_t AddCommitObserver(CommitObserver observer);
  void RemoveCommitObserver(uint64_t id);

  /// Replays a WAL into this (empty) database. Tables must be created first
  /// (schemas are not logged — they are static configuration in PReVer).
  Status ReplayLog(const std::string& path, bool* truncated = nullptr);

 private:
  Status ApplyToTable(const Mutation& mutation);
  void NotifyCommit(const Mutation& mutation);

  std::map<std::string, Table> tables_;
  WriteAheadLog wal_;
  uint64_t version_ = 0;
  std::vector<std::pair<uint64_t, CommitObserver>> observers_;
  uint64_t next_observer_id_ = 1;
};

}  // namespace prever::storage

#endif  // PREVER_STORAGE_DATABASE_H_
