#include "storage/table.h"

namespace prever::storage {

Status Table::Insert(const Row& row) {
  PREVER_RETURN_IF_ERROR(schema_.ValidateRow(row));
  PREVER_ASSIGN_OR_RETURN(Value key, schema_.KeyOf(row));
  auto [it, inserted] = rows_.emplace(std::move(key), row);
  if (!inserted) {
    return Status::AlreadyExists("key " + it->first.ToString() +
                                 " already present in table '" + name_ + "'");
  }
  ++mod_count_;
  return Status::Ok();
}

Status Table::Update(const Row& row) {
  PREVER_RETURN_IF_ERROR(schema_.ValidateRow(row));
  PREVER_ASSIGN_OR_RETURN(Value key, schema_.KeyOf(row));
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return Status::NotFound("key " + key.ToString() + " not in table '" +
                            name_ + "'");
  }
  it->second = row;
  ++mod_count_;
  return Status::Ok();
}

Status Table::Upsert(const Row& row) {
  PREVER_RETURN_IF_ERROR(schema_.ValidateRow(row));
  PREVER_ASSIGN_OR_RETURN(Value key, schema_.KeyOf(row));
  rows_[std::move(key)] = row;
  ++mod_count_;
  return Status::Ok();
}

Status Table::Delete(const Value& key) {
  if (rows_.erase(key) == 0) {
    return Status::NotFound("key " + key.ToString() + " not in table '" +
                            name_ + "'");
  }
  ++mod_count_;
  return Status::Ok();
}

Result<Row> Table::Get(const Value& key) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return Status::NotFound("key " + key.ToString() + " not in table '" +
                            name_ + "'");
  }
  return it->second;
}

bool Table::Contains(const Value& key) const { return rows_.count(key) > 0; }

void Table::Scan(const std::function<bool(const Row&)>& visitor) const {
  for (const auto& [key, row] : rows_) {
    if (!visitor(row)) return;
  }
}

}  // namespace prever::storage
