#ifndef PREVER_STORAGE_TABLE_H_
#define PREVER_STORAGE_TABLE_H_

#include <functional>
#include <map>
#include <string>

#include "common/status.h"
#include "storage/schema.h"

namespace prever::storage {

/// In-memory table keyed by the schema's primary-key column. Iteration order
/// is key order (std::map) so scans are deterministic — important because
/// scan results feed hashed ledger entries.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }

  /// Inserts a new row; AlreadyExists if the key is taken.
  Status Insert(const Row& row);

  /// Replaces an existing row (same key); NotFound if absent.
  Status Update(const Row& row);

  /// Inserts or replaces.
  Status Upsert(const Row& row);

  /// Removes by key; NotFound if absent.
  Status Delete(const Value& key);

  /// Point lookup.
  Result<Row> Get(const Value& key) const;
  bool Contains(const Value& key) const;

  /// Full scan in key order. Return false from the visitor to stop early.
  void Scan(const std::function<bool(const Row&)>& visitor) const;

  /// Monotone count of successful mutations against this table. Columnar
  /// snapshots and aggregate caches key their validity on it, so even
  /// direct Table mutations (bypassing Database::Apply) invalidate them.
  uint64_t mod_count() const { return mod_count_; }

 private:
  std::string name_;
  Schema schema_;
  std::map<Value, Row> rows_;
  uint64_t mod_count_ = 0;
};

}  // namespace prever::storage

#endif  // PREVER_STORAGE_TABLE_H_
