#include "storage/wal.h"

#include "common/crc32.h"
#include "obs/tracing.h"

namespace prever::storage {

WriteAheadLog::~WriteAheadLog() { Close(); }

Status WriteAheadLog::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot open WAL file: " + path);
  }
  path_ = path;
  return Status::Ok();
}

Status WriteAheadLog::Append(const Bytes& payload) {
  if (file_ == nullptr) return Status::Internal("WAL not open");
  PREVER_CAUSAL_SPAN(causal_wal, obs::TraceStage::kWalAppend);
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32(payload);
  uint8_t header[8];
  for (int i = 0; i < 4; ++i) header[i] = static_cast<uint8_t>(len >> (8 * i));
  for (int i = 0; i < 4; ++i) header[4 + i] = static_cast<uint8_t>(crc >> (8 * i));
  if (std::fwrite(header, 1, 8, file_) != 8 ||
      std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size()) {
    return Status::Internal("WAL write failed");
  }
  if (std::fflush(file_) != 0) return Status::Internal("WAL flush failed");
  return Status::Ok();
}

Status WriteAheadLog::AppendBatch(const std::vector<Bytes>& payloads) {
  if (file_ == nullptr) return Status::Internal("WAL not open");
  obs::TraceSpan causal_wal(obs::TraceStage::kWalAppend, payloads.size());
  size_t total = 0;
  for (const Bytes& p : payloads) total += 8 + p.size();
  Bytes buffer;
  buffer.reserve(total);
  for (const Bytes& p : payloads) {
    uint32_t len = static_cast<uint32_t>(p.size());
    uint32_t crc = Crc32(p);
    for (int i = 0; i < 4; ++i) {
      buffer.push_back(static_cast<uint8_t>(len >> (8 * i)));
    }
    for (int i = 0; i < 4; ++i) {
      buffer.push_back(static_cast<uint8_t>(crc >> (8 * i)));
    }
    buffer.insert(buffer.end(), p.begin(), p.end());
  }
  if (!buffer.empty() &&
      std::fwrite(buffer.data(), 1, buffer.size(), file_) != buffer.size()) {
    return Status::Internal("WAL batch write failed");
  }
  if (std::fflush(file_) != 0) return Status::Internal("WAL flush failed");
  return Status::Ok();
}

void WriteAheadLog::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<std::vector<Bytes>> WriteAheadLog::Recover(const std::string& path,
                                                  bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    // A missing log means an empty history, not an error: first boot.
    return std::vector<Bytes>{};
  }
  std::vector<Bytes> records;
  for (;;) {
    uint8_t header[8];
    size_t got = std::fread(header, 1, 8, f);
    if (got == 0) break;  // Clean EOF.
    if (got < 8) {
      if (truncated != nullptr) *truncated = true;
      break;  // Torn header.
    }
    uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(header[i]) << (8 * i);
    for (int i = 0; i < 4; ++i) crc |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
    constexpr uint32_t kMaxRecord = 64u << 20;  // Sanity bound: 64 MiB.
    if (len > kMaxRecord) {
      if (truncated != nullptr) *truncated = true;
      break;
    }
    Bytes payload(len);
    if (std::fread(payload.data(), 1, len, f) != len) {
      if (truncated != nullptr) *truncated = true;
      break;  // Torn payload.
    }
    if (Crc32(payload) != crc) {
      if (truncated != nullptr) *truncated = true;
      break;  // Corrupt record: stop at the last good prefix.
    }
    records.push_back(std::move(payload));
  }
  std::fclose(f);
  return records;
}

}  // namespace prever::storage
