#include "storage/value.h"

namespace prever::storage {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kString:
      return "string";
    case ValueType::kBool:
      return "bool";
    case ValueType::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

ValueType Value::type() const {
  return static_cast<ValueType>(data_.index());
}

Result<int64_t> Value::AsInt64() const {
  if (const auto* v = std::get_if<int64_t>(&data_)) return *v;
  return Status::InvalidArgument(std::string("value is not int64, is ") +
                                 ValueTypeName(type()));
}

Result<std::string> Value::AsString() const {
  if (const auto* v = std::get_if<std::string>(&data_)) return *v;
  return Status::InvalidArgument(std::string("value is not string, is ") +
                                 ValueTypeName(type()));
}

Result<bool> Value::AsBool() const {
  if (const auto* v = std::get_if<bool>(&data_)) return *v;
  return Status::InvalidArgument(std::string("value is not bool, is ") +
                                 ValueTypeName(type()));
}

Result<SimTime> Value::AsTimestamp() const {
  if (const auto* v = std::get_if<TimestampTag>(&data_)) return v->t;
  return Status::InvalidArgument(std::string("value is not timestamp, is ") +
                                 ValueTypeName(type()));
}

Result<int64_t> Value::AsNumeric() const {
  if (const auto* v = std::get_if<int64_t>(&data_)) return *v;
  if (const auto* t = std::get_if<TimestampTag>(&data_)) {
    return static_cast<int64_t>(t->t);
  }
  return Status::InvalidArgument(std::string("value is not numeric, is ") +
                                 ValueTypeName(type()));
}

bool Value::operator<(const Value& o) const {
  if (data_.index() != o.data_.index()) return data_.index() < o.data_.index();
  switch (type()) {
    case ValueType::kInt64:
      return std::get<int64_t>(data_) < std::get<int64_t>(o.data_);
    case ValueType::kString:
      return std::get<std::string>(data_) < std::get<std::string>(o.data_);
    case ValueType::kBool:
      return std::get<bool>(data_) < std::get<bool>(o.data_);
    case ValueType::kTimestamp:
      return std::get<TimestampTag>(data_).t < std::get<TimestampTag>(o.data_).t;
  }
  return false;
}

void Value::EncodeTo(BinaryWriter& w) const {
  w.WriteU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kInt64:
      w.WriteI64(std::get<int64_t>(data_));
      break;
    case ValueType::kString:
      w.WriteString(std::get<std::string>(data_));
      break;
    case ValueType::kBool:
      w.WriteBool(std::get<bool>(data_));
      break;
    case ValueType::kTimestamp:
      w.WriteU64(std::get<TimestampTag>(data_).t);
      break;
  }
}

Result<Value> Value::DecodeFrom(BinaryReader& r) {
  PREVER_ASSIGN_OR_RETURN(uint8_t tag, r.ReadU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kInt64: {
      PREVER_ASSIGN_OR_RETURN(int64_t v, r.ReadI64());
      return Value::Int64(v);
    }
    case ValueType::kString: {
      PREVER_ASSIGN_OR_RETURN(std::string v, r.ReadString());
      return Value::String(std::move(v));
    }
    case ValueType::kBool: {
      PREVER_ASSIGN_OR_RETURN(bool v, r.ReadBool());
      return Value::Bool(v);
    }
    case ValueType::kTimestamp: {
      PREVER_ASSIGN_OR_RETURN(uint64_t v, r.ReadU64());
      return Value::Timestamp(v);
    }
  }
  return Status::Corruption("unknown value type tag");
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kString: {
      // Escaped so the rendering is parseable by the constraint lexer.
      std::string out = "\"";
      for (char c : std::get<std::string>(data_)) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out.push_back(c);
        }
      }
      out.push_back('"');
      return out;
    }
    case ValueType::kBool:
      return std::get<bool>(data_) ? "true" : "false";
    case ValueType::kTimestamp:
      return "@" + std::to_string(std::get<TimestampTag>(data_).t);
  }
  return "?";
}

}  // namespace prever::storage
