#ifndef PREVER_STORAGE_COLUMN_BATCH_H_
#define PREVER_STORAGE_COLUMN_BATCH_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/database.h"
#include "storage/table.h"

namespace prever::storage {

/// Columnar snapshot of one table: each column decomposed into a flat typed
/// vector (the ytsaurus row_base typed-value idiom — one tag per column, not
/// one tag per cell), so vectorized predicate evaluation touches contiguous
/// int64 data instead of chasing per-row variant cells. Strings are copied
/// out of the table so the snapshot never dangles across mutations.
class ColumnBatch {
 public:
  struct ColumnData {
    ValueType type = ValueType::kInt64;
    /// kInt64 and kTimestamp columns (timestamps as raw SimTime numerics).
    std::vector<int64_t> nums;
    /// kBool columns.
    std::vector<uint8_t> bools;
    /// kString columns (owned copies).
    std::vector<std::string> strs;
  };

  /// Materializes a snapshot of `table` in key (scan) order.
  static ColumnBatch FromTable(const Table& table);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const Schema& schema() const { return schema_; }
  const ColumnData& column(size_t idx) const { return columns_[idx]; }

  /// Snapshot validity stamp: the table's mod_count at materialization.
  uint64_t table_mod_count() const { return table_mod_count_; }

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  uint64_t table_mod_count_ = 0;
  std::vector<ColumnData> columns_;
};

/// Per-database cache of columnar snapshots, invalidated by each table's
/// mod_count. Get() rebuilds lazily, so steady-state reads between commits
/// are zero-copy pointer hands-offs. Not internally synchronized — callers
/// (CompiledVerifier) serialize access under their own lock.
class ColumnBatchCache {
 public:
  /// Returns a snapshot of `table_name` that reflects the table's current
  /// contents. The pointer stays valid until the next Get()/Invalidate for
  /// the same table.
  Result<const ColumnBatch*> Get(const Database& db,
                                 const std::string& table_name);

  void Invalidate(const std::string& table_name);
  void Clear();

 private:
  std::map<std::string, std::unique_ptr<ColumnBatch>> batches_;
};

}  // namespace prever::storage

#endif  // PREVER_STORAGE_COLUMN_BATCH_H_
