#ifndef PREVER_STORAGE_VALUE_H_
#define PREVER_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/serial.h"
#include "common/sim_clock.h"
#include "common/status.h"

namespace prever::storage {

/// Column/value types supported by PReVer tables. Timestamps are SimTime
/// microseconds; they get their own type so sliding-window regulations can
/// identify the time column.
enum class ValueType : uint8_t {
  kInt64 = 0,
  kString = 1,
  kBool = 2,
  kTimestamp = 3,
};

const char* ValueTypeName(ValueType type);

/// A dynamically typed cell value.
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  static Value Int64(int64_t v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }
  static Value Bool(bool v) { return Value(v); }
  static Value Timestamp(SimTime t) { return Value(TimestampTag{t}); }

  ValueType type() const;

  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_timestamp() const { return type() == ValueType::kTimestamp; }

  /// Typed accessors; error on type mismatch.
  Result<int64_t> AsInt64() const;
  Result<std::string> AsString() const;
  Result<bool> AsBool() const;
  Result<SimTime> AsTimestamp() const;

  /// Numeric view: int64 and timestamp both coerce to int64 (used by the
  /// constraint evaluator's arithmetic).
  Result<int64_t> AsNumeric() const;

  /// Borrowed view of the string payload, or nullptr when not a string.
  /// The compiled evaluator keeps registers as tagged scalars with string
  /// pointers into stable storage; this avoids a copy per string load.
  const std::string* StringRef() const {
    return std::get_if<std::string>(&data_);
  }

  bool operator==(const Value& o) const { return data_ == o.data_; }
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// Total order within a type; comparing across types is an error at the
  /// evaluator level, but this ordering (type tag first) keeps map keys sane.
  bool operator<(const Value& o) const;

  /// Canonical binary encoding (type tag + payload).
  void EncodeTo(BinaryWriter& w) const;
  static Result<Value> DecodeFrom(BinaryReader& r);

  /// Debug / display form, e.g. `42`, `"abc"`, `true`, `@170000`.
  std::string ToString() const;

 private:
  struct TimestampTag {
    SimTime t;
    bool operator==(const TimestampTag& o) const { return t == o.t; }
  };
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(bool v) : data_(v) {}
  explicit Value(TimestampTag v) : data_(v) {}

  std::variant<int64_t, std::string, bool, TimestampTag> data_;
};

}  // namespace prever::storage

#endif  // PREVER_STORAGE_VALUE_H_
