#include "storage/column_batch.h"

namespace prever::storage {

ColumnBatch ColumnBatch::FromTable(const Table& table) {
  ColumnBatch batch;
  batch.schema_ = table.schema();
  batch.table_mod_count_ = table.mod_count();
  const size_t n_cols = batch.schema_.num_columns();
  batch.columns_.resize(n_cols);
  const size_t n_rows = table.size();
  for (size_t c = 0; c < n_cols; ++c) {
    ColumnData& col = batch.columns_[c];
    col.type = batch.schema_.columns()[c].type;
    switch (col.type) {
      case ValueType::kInt64:
      case ValueType::kTimestamp:
        col.nums.reserve(n_rows);
        break;
      case ValueType::kBool:
        col.bools.reserve(n_rows);
        break;
      case ValueType::kString:
        col.strs.reserve(n_rows);
        break;
    }
  }
  table.Scan([&](const Row& row) {
    for (size_t c = 0; c < n_cols; ++c) {
      ColumnData& col = batch.columns_[c];
      // Rows are schema-validated at insert, so the typed accessors cannot
      // fail here.
      switch (col.type) {
        case ValueType::kInt64: {
          auto v = row[c].AsInt64();
          col.nums.push_back(v.ok() ? *v : 0);
          break;
        }
        case ValueType::kTimestamp: {
          auto v = row[c].AsTimestamp();
          col.nums.push_back(v.ok() ? static_cast<int64_t>(*v) : 0);
          break;
        }
        case ValueType::kBool: {
          auto v = row[c].AsBool();
          col.bools.push_back(v.ok() && *v ? 1 : 0);
          break;
        }
        case ValueType::kString: {
          const std::string* s = row[c].StringRef();
          col.strs.push_back(s != nullptr ? *s : std::string());
          break;
        }
      }
    }
    ++batch.num_rows_;
    return true;
  });
  return batch;
}

Result<const ColumnBatch*> ColumnBatchCache::Get(
    const Database& db, const std::string& table_name) {
  PREVER_ASSIGN_OR_RETURN(const Table* table, db.GetTable(table_name));
  auto it = batches_.find(table_name);
  if (it != batches_.end() &&
      it->second->table_mod_count() == table->mod_count()) {
    return it->second.get();
  }
  auto batch = std::make_unique<ColumnBatch>(ColumnBatch::FromTable(*table));
  const ColumnBatch* out = batch.get();
  batches_[table_name] = std::move(batch);
  return out;
}

void ColumnBatchCache::Invalidate(const std::string& table_name) {
  batches_.erase(table_name);
}

void ColumnBatchCache::Clear() { batches_.clear(); }

}  // namespace prever::storage
