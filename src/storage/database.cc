#include "storage/database.h"

namespace prever::storage {

void Mutation::EncodeTo(BinaryWriter& w) const {
  w.WriteU8(static_cast<uint8_t>(op));
  w.WriteString(table);
  if (op == Op::kDelete) {
    key.EncodeTo(w);
  } else {
    w.WriteU32(static_cast<uint32_t>(row.size()));
    for (const Value& v : row) v.EncodeTo(w);
  }
}

Result<Mutation> Mutation::DecodeFrom(BinaryReader& r) {
  Mutation m;
  PREVER_ASSIGN_OR_RETURN(uint8_t op, r.ReadU8());
  if (op > static_cast<uint8_t>(Op::kDelete)) {
    return Status::Corruption("bad mutation op");
  }
  m.op = static_cast<Op>(op);
  PREVER_ASSIGN_OR_RETURN(m.table, r.ReadString());
  if (m.op == Op::kDelete) {
    PREVER_ASSIGN_OR_RETURN(m.key, Value::DecodeFrom(r));
  } else {
    PREVER_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
    m.row.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      PREVER_ASSIGN_OR_RETURN(Value v, Value::DecodeFrom(r));
      m.row.push_back(std::move(v));
    }
  }
  return m;
}

Bytes Mutation::Encode() const {
  BinaryWriter w;
  EncodeTo(w);
  return w.Take();
}

Result<Mutation> Mutation::Decode(const Bytes& data) {
  BinaryReader r(data);
  PREVER_ASSIGN_OR_RETURN(Mutation m, DecodeFrom(r));
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after mutation");
  return m;
}

Status Database::EnableWal(const std::string& path) {
  return wal_.Open(path);
}

Status Database::CreateTable(const std::string& name, const Schema& schema) {
  auto [it, inserted] = tables_.emplace(name, Table(name, schema));
  if (!inserted) return Status::AlreadyExists("table '" + name + "' exists");
  return Status::Ok();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table '" + name + "'");
  return &it->second;
}

Result<Table*> Database::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table '" + name + "'");
  return &it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Status Database::ApplyToTable(const Mutation& mutation) {
  PREVER_ASSIGN_OR_RETURN(Table * table, GetMutableTable(mutation.table));
  switch (mutation.op) {
    case Mutation::Op::kInsert:
      return table->Insert(mutation.row);
    case Mutation::Op::kUpdate:
      return table->Update(mutation.row);
    case Mutation::Op::kUpsert:
      return table->Upsert(mutation.row);
    case Mutation::Op::kDelete:
      return table->Delete(mutation.key);
  }
  return Status::Internal("unreachable");
}

Status Database::Apply(const Mutation& mutation) {
  // Validate the target exists up front so we never log a doomed mutation.
  if (!HasTable(mutation.table)) {
    return Status::NotFound("no table '" + mutation.table + "'");
  }
  if (wal_.is_open()) {
    PREVER_RETURN_IF_ERROR(wal_.Append(mutation.Encode()));
  }
  PREVER_RETURN_IF_ERROR(ApplyToTable(mutation));
  ++version_;
  NotifyCommit(mutation);
  return Status::Ok();
}

uint64_t Database::AddCommitObserver(CommitObserver observer) {
  uint64_t id = next_observer_id_++;
  observers_.emplace_back(id, std::move(observer));
  return id;
}

void Database::RemoveCommitObserver(uint64_t id) {
  for (auto it = observers_.begin(); it != observers_.end(); ++it) {
    if (it->first == id) {
      observers_.erase(it);
      return;
    }
  }
}

void Database::NotifyCommit(const Mutation& mutation) {
  for (const auto& [id, observer] : observers_) observer(mutation, version_);
}

Status Database::ReplayLog(const std::string& path, bool* truncated) {
  PREVER_ASSIGN_OR_RETURN(std::vector<Bytes> records,
                          WriteAheadLog::Recover(path, truncated));
  for (const Bytes& record : records) {
    PREVER_ASSIGN_OR_RETURN(Mutation m, Mutation::Decode(record));
    PREVER_RETURN_IF_ERROR(ApplyToTable(m));
    ++version_;
    NotifyCommit(m);
  }
  return Status::Ok();
}

}  // namespace prever::storage
