#ifndef PREVER_STORAGE_WAL_H_
#define PREVER_STORAGE_WAL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace prever::storage {

/// Append-only write-ahead log. Record format on disk:
///   [u32 payload_len][u32 crc32(payload)][payload bytes]
/// Recovery stops cleanly at the first torn or corrupt record (the tail may
/// be partial after a crash); anything before it is returned.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens (creating if needed) the log file for appending.
  Status Open(const std::string& path);

  bool is_open() const { return file_ != nullptr; }

  /// Appends one record and flushes it to the OS.
  Status Append(const Bytes& payload);

  /// Group commit: appends all records with ONE fwrite and ONE fflush. On
  /// disk this is byte-identical to appending them individually; recovery
  /// cannot tell the difference (a torn batch tail truncates like any other
  /// torn record).
  Status AppendBatch(const std::vector<Bytes>& payloads);

  /// Closes the file (also done by the destructor).
  void Close();

  /// Reads all intact records from a log file. A corrupt/torn tail is not an
  /// error — recovery returns the clean prefix; `truncated` (optional)
  /// reports whether a damaged tail was skipped.
  static Result<std::vector<Bytes>> Recover(const std::string& path,
                                            bool* truncated = nullptr);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace prever::storage

#endif  // PREVER_STORAGE_WAL_H_
