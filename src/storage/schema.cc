#include "storage/schema.h"

namespace prever::storage {

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, schema has " +
        std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != columns_[i].type) {
      return Status::InvalidArgument(
          "column '" + columns_[i].name + "' expects " +
          ValueTypeName(columns_[i].type) + ", got " +
          ValueTypeName(row[i].type()));
    }
  }
  return Status::Ok();
}

Result<Value> Schema::KeyOf(const Row& row) const {
  if (key_column_ >= row.size()) {
    return Status::InvalidArgument("row too short for key column");
  }
  return row[key_column_];
}

void Schema::EncodeTo(BinaryWriter& w) const {
  w.WriteU32(static_cast<uint32_t>(columns_.size()));
  for (const Column& c : columns_) {
    w.WriteString(c.name);
    w.WriteU8(static_cast<uint8_t>(c.type));
  }
  w.WriteU32(static_cast<uint32_t>(key_column_));
}

Result<Schema> Schema::DecodeFrom(BinaryReader& r) {
  PREVER_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  std::vector<Column> columns;
  columns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Column c;
    PREVER_ASSIGN_OR_RETURN(c.name, r.ReadString());
    PREVER_ASSIGN_OR_RETURN(uint8_t t, r.ReadU8());
    if (t > static_cast<uint8_t>(ValueType::kTimestamp)) {
      return Status::Corruption("bad column type tag");
    }
    c.type = static_cast<ValueType>(t);
    columns.push_back(std::move(c));
  }
  PREVER_ASSIGN_OR_RETURN(uint32_t key, r.ReadU32());
  if (key >= n && n > 0) return Status::Corruption("key column out of range");
  return Schema(std::move(columns), key);
}

}  // namespace prever::storage
