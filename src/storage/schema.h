#ifndef PREVER_STORAGE_SCHEMA_H_
#define PREVER_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace prever::storage {

/// A named, typed column.
struct Column {
  std::string name;
  ValueType type;
};

/// A row is a positional tuple of values, interpreted against a Schema.
using Row = std::vector<Value>;

/// Table schema: ordered columns, with column 0 conventionally addressable
/// as the primary key via `key_column`.
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<Column> columns, size_t key_column = 0)
      : columns_(std::move(columns)), key_column_(key_column) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  size_t key_column() const { return key_column_; }

  /// Index of the named column, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Checks arity and per-column type agreement.
  Status ValidateRow(const Row& row) const;

  /// Extracts the primary-key value from a (validated) row.
  Result<Value> KeyOf(const Row& row) const;

  void EncodeTo(BinaryWriter& w) const;
  static Result<Schema> DecodeFrom(BinaryReader& r);

 private:
  std::vector<Column> columns_;
  size_t key_column_ = 0;
};

}  // namespace prever::storage

#endif  // PREVER_STORAGE_SCHEMA_H_
